// Tests for the comparison baselines: Chord ring + routing, SCRIBE trees,
// Narada mesh trees, and the centralized references.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/centralized.h"
#include "baselines/chord.h"
#include "baselines/narada.h"
#include "baselines/scribe.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::baselines {
namespace {

using overlay::PeerId;

// ------------------------------------------------------------------ chord

TEST(Chord, IdsAreStableAndDistinct) {
  testing::SmallWorld world(64, 3);
  ChordRing a(*world.population), b(*world.population);
  std::set<std::uint64_t> ids;
  for (PeerId p = 0; p < 64; ++p) {
    EXPECT_EQ(a.id_of(p), b.id_of(p));
    ids.insert(a.id_of(p));
  }
  EXPECT_EQ(ids.size(), 64u);
}

TEST(Chord, SuccessorMatchesBruteForce) {
  testing::SmallWorld world(48, 5);
  ChordRing ring(*world.population);
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t key = rng();
    // Brute force: the peer with the smallest id >= key, else the global
    // minimum (wrap).
    PeerId expected = overlay::kNoPeer;
    PeerId min_peer = 0;
    for (PeerId p = 0; p < 48; ++p) {
      if (ring.id_of(p) < ring.id_of(min_peer)) min_peer = p;
      if (ring.id_of(p) >= key &&
          (expected == overlay::kNoPeer ||
           ring.id_of(p) < ring.id_of(expected))) {
        expected = p;
      }
    }
    if (expected == overlay::kNoPeer) expected = min_peer;
    EXPECT_EQ(ring.successor_of(key), expected);
  }
}

TEST(Chord, SuccessorOfOwnIdIsSelf) {
  testing::SmallWorld world(32, 7);
  ChordRing ring(*world.population);
  for (PeerId p = 0; p < 32; ++p) {
    EXPECT_EQ(ring.successor_of(ring.id_of(p)), p);
  }
}

TEST(Chord, RoutesTerminateAtOwner) {
  testing::SmallWorld world(64, 9);
  ChordRing ring(*world.population);
  util::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const auto from = static_cast<PeerId>(rng.uniform_index(64));
    const std::uint64_t key = rng();
    const auto path = ring.route(from, key);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), from);
    EXPECT_EQ(path.back(), ring.successor_of(key));
    // No repeated nodes (monotone ring progress).
    std::set<PeerId> unique(path.begin(), path.end());
    EXPECT_EQ(unique.size(), path.size());
  }
}

TEST(Chord, HopCountLogarithmic) {
  testing::SmallWorld world(128, 13);
  ChordRing ring(*world.population);
  util::Rng rng(17);
  double total_hops = 0.0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const auto from = static_cast<PeerId>(rng.uniform_index(128));
    const auto path = ring.route(from, rng());
    total_hops += static_cast<double>(path.size() - 1);
    EXPECT_LE(path.size() - 1, 2 * 7 + 4);  // ~2 log2(128) + slack
  }
  EXPECT_LE(total_hops / trials, std::log2(128.0));  // avg ~ 0.5 log2 n
}

TEST(Chord, FingersAreSuccessorsOfOffsets) {
  testing::SmallWorld world(32, 19);
  ChordRing ring(*world.population);
  for (PeerId p = 0; p < 32; p += 5) {
    const auto& fingers = ring.fingers(p);
    ASSERT_EQ(fingers.size(), ChordRing::kBits);
    for (std::size_t k = 0; k < ChordRing::kBits; k += 9) {
      EXPECT_EQ(fingers[k],
                ring.successor_of(ring.id_of(p) + (std::uint64_t{1} << k)));
    }
  }
}

// ----------------------------------------------------------------- scribe

TEST(Scribe, TreeSpansSubscribersAndIsConsistent) {
  testing::SmallWorld world(96, 23);
  ChordRing ring(*world.population);
  std::vector<PeerId> subscribers{3, 14, 27, 41, 58, 73, 90};
  const auto result = build_scribe_tree(ring, *world.population,
                                        ChordRing::hash_key(7), subscribers);
  EXPECT_TRUE(result.tree.is_consistent());
  EXPECT_EQ(result.root, ring.successor_of(ChordRing::hash_key(7)));
  EXPECT_EQ(result.tree.root(), result.root);
  for (const auto s : subscribers) {
    EXPECT_TRUE(result.tree.contains(s));
    EXPECT_TRUE(result.tree.is_subscriber(s));
  }
  EXPECT_GT(result.join_messages, 0u);
}

TEST(Scribe, ParentsLieOnChordRoutes) {
  testing::SmallWorld world(64, 29);
  ChordRing ring(*world.population);
  const std::uint64_t key = ChordRing::hash_key(99);
  std::vector<PeerId> subscribers{5, 25, 45};
  const auto result =
      build_scribe_tree(ring, *world.population, key, subscribers);
  for (const auto s : subscribers) {
    const auto route = ring.route(s, key);
    // The subscriber's tree parent must be its next hop on the route.
    if (s != result.root) {
      ASSERT_GE(route.size(), 2u);
      EXPECT_EQ(result.tree.parent(s), route[1]);
    }
  }
}

TEST(Scribe, SharedPrefixesCreateSharedRelays) {
  testing::SmallWorld world(96, 31);
  ChordRing ring(*world.population);
  // Subscribing everyone twice must not change the tree.
  std::vector<PeerId> subscribers;
  for (PeerId p = 0; p < 96; p += 4) subscribers.push_back(p);
  auto once = build_scribe_tree(ring, *world.population,
                                ChordRing::hash_key(1), subscribers);
  std::vector<PeerId> twice_list = subscribers;
  twice_list.insert(twice_list.end(), subscribers.begin(), subscribers.end());
  auto twice = build_scribe_tree(ring, *world.population,
                                 ChordRing::hash_key(1), twice_list);
  EXPECT_EQ(once.tree.node_count(), twice.tree.node_count());
}

// ----------------------------------------------------------------- narada

TEST(Narada, TreeSpansMembers) {
  testing::SmallWorld world(64, 37);
  util::Rng rng(1);
  std::vector<PeerId> members{4, 12, 20, 28, 36, 44, 52, 60};
  const auto result = build_narada_tree(*world.population, 0, members,
                                        NaradaOptions{}, rng);
  EXPECT_TRUE(result.tree.is_consistent());
  EXPECT_EQ(result.tree.root(), 0u);
  EXPECT_EQ(result.tree.node_count(), members.size() + 1);
  for (const auto m : members) EXPECT_TRUE(result.tree.is_subscriber(m));
  EXPECT_GT(result.mesh_links, members.size());  // near + random links
  EXPECT_EQ(result.refresh_messages_per_round, 2 * result.mesh_links);
}

TEST(Narada, TreeOnlyContainsParticipants) {
  testing::SmallWorld world(64, 41);
  util::Rng rng(2);
  std::vector<PeerId> members{10, 30, 50};
  const auto result = build_narada_tree(*world.population, 5, members,
                                        NaradaOptions{}, rng);
  for (const auto node : result.tree.nodes()) {
    EXPECT_TRUE(node == 5 || std::find(members.begin(), members.end(),
                                       node) != members.end());
  }
}

TEST(Narada, HandlesSourceOnlyGroup) {
  testing::SmallWorld world(16, 43);
  util::Rng rng(3);
  const auto result = build_narada_tree(*world.population, 2, {},
                                        NaradaOptions{}, rng);
  EXPECT_EQ(result.tree.node_count(), 1u);
}

TEST(Narada, MeshPathsGiveReasonableDelay) {
  // Tree delay from the source to any member is at least the direct
  // latency and bounded by a small multiple of it (mesh SPT quality).
  testing::SmallWorld world(64, 47);
  util::Rng rng(4);
  std::vector<PeerId> members;
  for (PeerId p = 1; p < 33; p += 2) members.push_back(p);
  const auto result = build_narada_tree(*world.population, 0, members,
                                        NaradaOptions{}, rng);
  for (const auto m : members) {
    double delay = 0.0;
    PeerId at = m;
    while (at != 0u) {
      const auto up = result.tree.parent(at);
      delay += world.population->latency_ms(at, up);
      at = up;
    }
    EXPECT_GE(delay, world.population->latency_ms(0, m) - 1e-9);
  }
}

// ------------------------------------------------------------ centralized

TEST(Centralized, StarIsDepthOne) {
  const auto tree = build_unicast_star(3, {1, 2, 5, 7});
  EXPECT_TRUE(tree.is_consistent());
  EXPECT_EQ(tree.max_depth(), 1u);
  EXPECT_EQ(tree.node_count(), 5u);
  for (const auto m : {1u, 2u, 5u, 7u}) {
    EXPECT_EQ(tree.parent(m), 3u);
    EXPECT_TRUE(tree.is_subscriber(m));
  }
}

TEST(Centralized, StarHandlesSourceInMembers) {
  const auto tree = build_unicast_star(3, {1, 3, 5});
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_TRUE(tree.is_subscriber(3));
}

TEST(Centralized, DegreeBoundedTreeSpansAndRespectsBounds) {
  testing::SmallWorld world(96, 53);
  std::vector<PeerId> members;
  for (PeerId p = 1; p < 60; p += 2) members.push_back(p);
  DegreeBoundedOptions options;
  const auto tree =
      build_degree_bounded_tree(*world.population, 0, members, options);
  EXPECT_TRUE(tree.is_consistent());
  for (const auto m : members) EXPECT_TRUE(tree.is_subscriber(m));
  // Tree degree respects the capacity-derived bound (the soft-relax path
  // only triggers when every node is saturated, impossible here).
  for (const auto node : tree.nodes()) {
    const double capacity = world.population->info(node).capacity;
    const auto bound = std::clamp(
        static_cast<std::size_t>(
            std::ceil(options.base * std::pow(capacity, options.exponent))),
        options.min_degree, options.max_degree);
    std::size_t degree = tree.children(node).size();
    if (node != tree.root()) ++degree;
    EXPECT_LE(degree, bound + 1) << "node " << node;
  }
}

TEST(Centralized, DegreeBoundedBeatsStarOnNodeLoad) {
  testing::SmallWorld world(96, 59);
  std::vector<PeerId> members;
  for (PeerId p = 1; p < 80; ++p) members.push_back(p);
  const auto star = build_unicast_star(0, members);
  const auto tree = build_degree_bounded_tree(*world.population, 0, members);
  // Star root fan-out = all members; bounded tree spreads it.
  EXPECT_EQ(star.children(0).size(), members.size());
  EXPECT_LT(tree.children(0).size(), members.size() / 2);
}

}  // namespace
}  // namespace groupcast::baselines
