// Cross-feature configuration matrix: every combination of underlay model,
// coordinate system, and overlay architecture must produce a working
// deployment with sane group communication.  Catches integration breakage
// between independently developed options.
#include <gtest/gtest.h>

#include <tuple>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"

namespace groupcast::core {
namespace {

class ConfigMatrix
    : public ::testing::TestWithParam<
          std::tuple<UnderlayModel, overlay::CoordinateSystem, OverlayKind>> {
 protected:
  MiddlewareConfig config() const {
    MiddlewareConfig c;
    c.peer_count = 150;
    c.seed = 99;
    c.underlay_model = std::get<0>(GetParam());
    c.population.coordinates = std::get<1>(GetParam());
    c.overlay = std::get<2>(GetParam());
    return c;
  }
};

TEST_P(ConfigMatrix, DeploymentWorksEndToEnd) {
  GroupCastMiddleware middleware(config());
  EXPECT_TRUE(middleware.graph().connectivity().connected);

  auto group = middleware.establish_random_group(25);
  EXPECT_TRUE(group.tree.is_consistent());
  EXPECT_GT(group.report.success_rate(), 0.85);

  const auto session = middleware.session(group);
  const auto m = metrics::evaluate_session(middleware.population(), session,
                                           group.advert.rendezvous);
  EXPECT_GE(m.delay_penalty, 1.0 - 1e-9);
  EXPECT_GT(m.esm_avg_delay_ms, 0.0);
  EXPECT_GE(m.link_stress, 1.0 - 1e-9);
}

TEST_P(ConfigMatrix, MembershipChurnSurvives) {
  GroupCastMiddleware middleware(config());
  auto group = middleware.establish_random_group(20);
  // One late join, one removal, one relay failure.
  for (overlay::PeerId p = 0; p < 150; ++p) {
    if (!group.tree.is_subscriber(p)) {
      middleware.add_subscriber(group, p);
      break;
    }
  }
  for (const auto node : group.tree.nodes()) {
    if (node != group.tree.root() && group.tree.is_subscriber(node) &&
        group.tree.children(node).empty()) {
      middleware.remove_subscriber(group, node);
      break;
    }
  }
  for (const auto node : group.tree.nodes()) {
    if (node != group.tree.root() && !group.tree.children(node).empty()) {
      middleware.repair_after_failure(group, node);
      break;
    }
  }
  EXPECT_TRUE(group.tree.is_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(UnderlayModel::kTransitStub,
                          UnderlayModel::kWaxman),
        ::testing::Values(overlay::CoordinateSystem::kGnp,
                          overlay::CoordinateSystem::kVivaldi),
        ::testing::Values(OverlayKind::kGroupCast,
                          OverlayKind::kRandomPowerLaw,
                          OverlayKind::kSupernode)));

}  // namespace
}  // namespace groupcast::core
