// Tests for the population coordinate-system options (GNP vs Vivaldi) and
// the pinned-resource-level ablation hook.
#include <gtest/gtest.h>

#include "core/middleware.h"
#include "metrics/graph_stats.h"
#include "overlay/population.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace groupcast::overlay {
namespace {

PeerPopulation make_population(const net::IpRouting& routing,
                               CoordinateSystem system, util::Rng& rng) {
  PopulationConfig config;
  config.peer_count = 64;
  config.coordinates = system;
  config.gnp.landmarks = 6;
  config.vivaldi_rounds = 80;
  return PeerPopulation(routing, config, rng);
}

TEST(CoordinateSystems, VivaldiCoordinatesAreInformative) {
  testing::SmallWorld world(4, 3);
  util::Rng rng(5);
  const auto population =
      make_population(*world.routing, CoordinateSystem::kVivaldi, rng);
  std::vector<double> est, real;
  for (PeerId a = 0; a < 64; a += 3) {
    for (PeerId b = a + 1; b < 64; b += 5) {
      est.push_back(population.coord_distance_ms(a, b));
      real.push_back(population.latency_ms(a, b));
    }
  }
  EXPECT_GT(util::pearson(est, real), 0.6);
}

TEST(CoordinateSystems, GnpAndVivaldiProduceDifferentEmbeddings) {
  testing::SmallWorld world(4, 7);
  util::Rng rng_a(5), rng_b(5);
  const auto gnp =
      make_population(*world.routing, CoordinateSystem::kGnp, rng_a);
  const auto vivaldi =
      make_population(*world.routing, CoordinateSystem::kVivaldi, rng_b);
  bool any_different = false;
  for (PeerId p = 0; p < 64; ++p) {
    if (gnp.info(p).coord.distance_to(vivaldi.info(p).coord) > 1.0) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(CoordinateSystems, MiddlewareRunsOnVivaldi) {
  core::MiddlewareConfig config;
  config.peer_count = 120;
  config.seed = 11;
  config.population.coordinates = CoordinateSystem::kVivaldi;
  core::GroupCastMiddleware middleware(config);
  EXPECT_TRUE(middleware.graph().connectivity().connected);
  auto group = middleware.establish_random_group(15);
  EXPECT_GT(group.report.success_rate(), 0.8);
}

// ------------------------------------------------------- ablation pinning

TEST(AblationPinning, DistanceOnlyYieldsCloserNeighboursThanCapacityOnly) {
  core::MiddlewareConfig near_config, far_config;
  near_config.peer_count = far_config.peer_count = 250;
  near_config.seed = far_config.seed = 13;
  near_config.bootstrap.pinned_resource_level = 0.001;  // gamma ~ 0
  far_config.bootstrap.pinned_resource_level = 0.999;   // gamma ~ 1
  core::GroupCastMiddleware near_mw(near_config), far_mw(far_config);
  const auto near_dist =
      metrics::neighbor_distance_summary(near_mw.population(),
                                         near_mw.graph());
  const auto far_dist = metrics::neighbor_distance_summary(
      far_mw.population(), far_mw.graph());
  EXPECT_LT(near_dist.mean(), 0.7 * far_dist.mean());
}

TEST(AblationPinning, CapacityDrivesDegreeUnderEveryBlend) {
  // The bootstrap's Eq. 6 substitutes occurrence frequency for capacity,
  // so the blend pin steers *which* hubs attract links, not whether hubs
  // exist; the capacity-degree correlation instead comes from the
  // capacity-scaled out-degree targets and must stay clearly positive
  // under any pin.
  for (const double pin : {0.001, 0.5, 0.999, -1.0}) {
    core::MiddlewareConfig config;
    config.peer_count = 250;
    config.seed = 17;
    config.bootstrap.pinned_resource_level = pin;
    core::GroupCastMiddleware middleware(config);
    std::vector<double> capacity, degree;
    for (PeerId p = 0; p < 250; ++p) {
      capacity.push_back(middleware.population().info(p).capacity);
      degree.push_back(static_cast<double>(middleware.graph().degree(p)));
    }
    EXPECT_GT(util::pearson(capacity, degree), 0.1) << "pin " << pin;
  }
}

TEST(AblationPinning, NegativePinMeansSampled) {
  // Default (-1) must behave exactly like the paper path: two middlewares
  // with identical seeds agree.
  core::MiddlewareConfig a, b;
  a.peer_count = b.peer_count = 150;
  a.seed = b.seed = 19;
  b.bootstrap.pinned_resource_level = -1.0;
  core::GroupCastMiddleware mw_a(a), mw_b(b);
  EXPECT_EQ(mw_a.graph().edge_count(), mw_b.graph().edge_count());
}

}  // namespace
}  // namespace groupcast::overlay
