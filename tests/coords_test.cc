// Tests for network coordinates: Coord arithmetic, the Nelder–Mead
// minimizer (against analytic optima), GNP embedding accuracy on
// synthetic Euclidean data and on a transit-stub underlay, and Vivaldi
// convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "coords/coord.h"
#include "coords/gnp.h"
#include "coords/nelder_mead.h"
#include "coords/vivaldi.h"
#include "test_helpers.h"
#include "util/require.h"
#include "util/stats.h"

namespace groupcast::coords {
namespace {

TEST(Coord, DistanceAndNorm) {
  Coord a, b;
  a[0] = 3.0;
  b[1] = 4.0;
  EXPECT_DOUBLE_EQ(a.distance_to(b), 5.0);
  EXPECT_DOUBLE_EQ(a.distance_to(a), 0.0);
  EXPECT_DOUBLE_EQ((a + b).magnitude(), 5.0);
}

TEST(Coord, VectorArithmetic) {
  Coord a, b;
  a[0] = 1.0;
  a[2] = 2.0;
  b[0] = 3.0;
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[2], 2.0);
  const auto diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], -2.0);
  const auto scaled = a * 2.5;
  EXPECT_DOUBLE_EQ(scaled[2], 5.0);
}

TEST(Coord, DistanceIsSymmetricAndTriangular) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Coord a, b, c;
    for (std::size_t d = 0; d < kDims; ++d) {
      a[d] = rng.uniform(-100, 100);
      b[d] = rng.uniform(-100, 100);
      c[d] = rng.uniform(-100, 100);
    }
    EXPECT_DOUBLE_EQ(a.distance_to(b), b.distance_to(a));
    EXPECT_LE(a.distance_to(c), a.distance_to(b) + b.distance_to(c) + 1e-9);
  }
}

TEST(NelderMead, MinimizesQuadraticBowl) {
  const auto f = [](const std::vector<double>& x) {
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      total += (x[i] - static_cast<double>(i)) * (x[i] - static_cast<double>(i));
    }
    return total;
  };
  const auto result = nelder_mead(f, std::vector<double>(4, 10.0));
  EXPECT_LT(result.value, 1e-3);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.x[i], static_cast<double>(i), 0.05);
  }
}

TEST(NelderMead, HandlesAsymmetricValley) {
  // f(x, y) = (x-1)^2 + 100 (y - x)^2: a narrow diagonal valley.
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) +
           100.0 * (x[1] - x[0]) * (x[1] - x[0]);
  };
  NelderMeadOptions options;
  options.max_iterations = 2000;
  options.initial_step = 2.0;
  const auto result = nelder_mead(f, {5.0, -5.0}, options);
  EXPECT_LT(result.value, 1e-2);
}

TEST(NelderMead, RespectsIterationBudget) {
  const auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  NelderMeadOptions options;
  options.max_iterations = 5;
  const auto result = nelder_mead(f, {100.0}, options);
  EXPECT_LE(result.iterations, 5u);
}

TEST(Gnp, RecoversSyntheticEuclideanDistances) {
  // Ground-truth points in the embedding space itself: GNP should recover
  // distances almost exactly (no triangle-inequality violations to absorb).
  util::Rng rng(17);
  std::vector<Coord> truth(60);
  for (auto& c : truth) {
    for (std::size_t d = 0; d < kDims; ++d) c[d] = rng.uniform(0, 300);
  }
  const LatencyOracle oracle = [&truth](std::size_t a, std::size_t b) {
    return truth[a].distance_to(truth[b]);
  };
  GnpEmbedding gnp(truth.size(), oracle, rng);
  util::Rng eval(18);
  EXPECT_LT(gnp.median_relative_error(oracle, eval), 0.05);
}

TEST(Gnp, ReasonableErrorOnTransitStubLatencies) {
  testing::SmallWorld world(48, 19);
  const auto& population = *world.population;
  const LatencyOracle oracle = [&population](std::size_t a, std::size_t b) {
    return population.latency_ms(static_cast<overlay::PeerId>(a),
                                 static_cast<overlay::PeerId>(b));
  };
  util::Rng rng(20);
  GnpEmbedding gnp(48, oracle, rng);
  util::Rng eval(21);
  // Internet-style latencies are not perfectly Euclidean; GNP's published
  // median relative error is ~0.1-0.5.  Accept anything clearly informative.
  EXPECT_LT(gnp.median_relative_error(oracle, eval), 0.6);
}

TEST(Gnp, LandmarkCountClampedToHosts) {
  util::Rng rng(23);
  const LatencyOracle oracle = [](std::size_t, std::size_t) { return 10.0; };
  GnpOptions options;
  options.landmarks = 50;
  GnpEmbedding gnp(5, oracle, rng, options);
  EXPECT_EQ(gnp.landmark_hosts().size(), 5u);
}

TEST(Gnp, CoordinatesCorrelateWithTrueDistance) {
  testing::SmallWorld world(40, 29);
  const auto& population = *world.population;
  // PeerPopulation already embeds with GNP; check the correlation between
  // coordinate distance and true latency over all pairs.
  std::vector<double> est, real;
  for (overlay::PeerId a = 0; a < 40; ++a) {
    for (overlay::PeerId b = a + 1; b < 40; ++b) {
      est.push_back(population.coord_distance_ms(a, b));
      real.push_back(population.latency_ms(a, b));
    }
  }
  EXPECT_GT(util::pearson(est, real), 0.8);
}

TEST(Vivaldi, ConvergesOnSyntheticDistances) {
  util::Rng rng(31);
  std::vector<Coord> truth(40);
  for (auto& c : truth) {
    for (std::size_t d = 0; d < kDims; ++d) c[d] = rng.uniform(0, 200);
  }
  const auto oracle = [&truth](std::size_t a, std::size_t b) {
    return truth[a].distance_to(truth[b]);
  };
  VivaldiModel model(truth.size(), rng);
  model.run_rounds(200, oracle, rng);
  util::Rng eval(32);
  EXPECT_LT(model.median_relative_error(oracle, eval), 0.12);
}

TEST(Vivaldi, ErrorEstimatesShrink) {
  util::Rng rng(37);
  std::vector<Coord> truth(20);
  for (auto& c : truth) {
    for (std::size_t d = 0; d < kDims; ++d) c[d] = rng.uniform(0, 100);
  }
  const auto oracle = [&truth](std::size_t a, std::size_t b) {
    return truth[a].distance_to(truth[b]);
  };
  VivaldiModel model(truth.size(), rng);
  const double before = model.node(0).error;
  model.run_rounds(150, oracle, rng);
  EXPECT_LT(model.node(0).error, before);
}

TEST(Vivaldi, ObservePreconditions) {
  util::Rng rng(41);
  VivaldiModel model(3, rng);
  EXPECT_THROW(model.observe(0, 0, 10.0), PreconditionError);
  EXPECT_THROW(model.observe(0, 1, -1.0), PreconditionError);
  EXPECT_THROW(model.observe(0, 9, 1.0), PreconditionError);
  EXPECT_NO_THROW(model.observe(0, 1, 10.0));
}

TEST(Vivaldi, RequiresAtLeastTwoNodes) {
  util::Rng rng(43);
  EXPECT_THROW(VivaldiModel(1, rng), PreconditionError);
}

}  // namespace
}  // namespace groupcast::coords
