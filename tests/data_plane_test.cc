// Tests for the reliable data plane on tree edges (docs/ROBUSTNESS.md,
// "Data-plane reliability" and "Flow control & adaptive detection"):
// exactly-once delivery through loss via NACK/retransmit, sequence-layer
// duplicate suppression under retransmit races, cumulative-ack trimming of
// the per-child send buffer, per-edge high-water accounting, sender-side
// flow control under a slow child, the adaptive miss-threshold math, and
// the determinism of the reliability counters across grid worker counts.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/node.h"
#include "metrics/experiment.h"
#include "overlay/bootstrap.h"
#include "overlay/host_cache.h"
#include "test_helpers.h"
#include "trace/counters.h"
#include "trace/histogram.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

TransportOptions lossy_transport(double loss) {
  TransportOptions options;
  options.loss_probability = loss;
  return options;
}

/// A full node deployment over a joined GroupCast overlay, with the
/// reliable data plane switched on.
struct ReliableDeployment {
  testing::SmallWorld world;
  overlay::OverlayGraph graph;
  sim::Simulator simulator;
  Transport transport;
  std::vector<std::unique_ptr<GroupCastNode>> nodes;

  explicit ReliableDeployment(std::size_t peers = 64, std::uint64_t seed = 21,
                              double loss = 0.0, NodeOptions options = {})
      : world(peers, seed),
        graph(peers),
        transport(simulator, *world.population,
                  lossy_transport(loss), world.rng) {
    options.reliability.enabled = true;
    overlay::HostCacheServer cache(*world.population,
                                   overlay::HostCacheOptions{}, world.rng);
    overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                          overlay::BootstrapOptions{},
                                          world.rng);
    for (PeerId p = 0; p < peers; ++p) bootstrap.join(p);
    for (PeerId p = 0; p < peers; ++p) {
      nodes.push_back(std::make_unique<GroupCastNode>(
          p, transport, graph, options, world.rng));
      nodes.back()->start();
    }
  }
};

struct CounterScope {
  explicit CounterScope(std::size_t nodes) {
    trace::counters().enable(nodes);
  }
  ~CounterScope() {
    trace::counters().disable();
    trace::counters().reset();
  }
};

/// A node deployment over a hand-wired overlay graph (no bootstrap), with
/// per-peer options — the topology-exact fixture for flow-control tests
/// where which edge blocks must be known in advance.
struct WiredDeployment {
  testing::SmallWorld world;
  overlay::OverlayGraph graph;
  sim::Simulator simulator;
  Transport transport;
  std::vector<std::unique_ptr<GroupCastNode>> nodes;

  WiredDeployment(std::size_t peers,
                  const std::vector<std::pair<PeerId, PeerId>>& edges,
                  const std::function<NodeOptions(PeerId)>& options_for)
      : world(peers, 21),
        graph(peers),
        transport(simulator, *world.population, TransportOptions{},
                  world.rng) {
    for (const auto& [a, b] : edges) graph.add_edge(a, b);
    for (PeerId p = 0; p < peers; ++p) {
      nodes.push_back(std::make_unique<GroupCastNode>(
          p, transport, graph, options_for(p), world.rng));
      nodes.back()->start();
    }
  }
};

NodeOptions reliable_options() {
  NodeOptions options;
  options.reliability.enabled = true;
  return options;
}

TEST(DataPlane, LossyPublishDeliversExactlyOnce) {
  CounterScope scope(64);
  ReliableDeployment d(64, 31, 0.15);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  const std::vector<PeerId> subscribers{4, 9, 16, 25, 36, 49};
  for (const auto s : subscribers) d.nodes[s]->subscribe(9);
  d.simulator.run();
  std::map<PeerId, std::map<std::uint64_t, int>> deliveries;
  std::vector<PeerId> attached;
  for (const auto s : subscribers) {
    // Loss can defeat even the retry ladder; score only attached members.
    if (!d.nodes[s]->is_subscribed(9) || !d.nodes[s]->on_tree(9)) continue;
    attached.push_back(s);
    d.nodes[s]->on_data([&deliveries, s](GroupId, std::uint64_t id, PeerId) {
      ++deliveries[s][id];
    });
  }
  ASSERT_GE(attached.size(), 3u);
  const int kPayloads = 30;
  for (int i = 0; i < kPayloads; ++i) {
    d.nodes[0]->publish(9, 1000 + i);
    d.simulator.run_until(d.simulator.now() + sim::SimTime::millis(50));
  }
  // Leave ample time for probe-driven tail recovery.
  d.simulator.run_until(d.simulator.now() + sim::SimTime::seconds(10));
  for (const auto s : attached) {
    for (int i = 0; i < kPayloads; ++i) {
      EXPECT_EQ(deliveries[s][1000 + i], 1)
          << "peer " << s << " payload " << 1000 + i;
    }
  }
  // 15% loss over ~200 tree-edge sends must have exercised the machinery.
  EXPECT_GT(trace::counters().total(trace::CounterId::kNacksSent), 0u);
  EXPECT_GT(trace::counters().total(trace::CounterId::kRetransmits), 0u);
}

TEST(DataPlane, SequenceLayerSuppressesRetransmitRaceDuplicates) {
  CounterScope scope(64);
  ReliableDeployment d(64, 31);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[16]->subscribe(9);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[16]->on_tree(9));
  int delivered = 0;
  d.nodes[16]->on_data([&](GroupId, std::uint64_t, PeerId) { ++delivered; });
  d.nodes[0]->publish(9, 777);
  d.simulator.run();
  EXPECT_EQ(delivered, 1);
  // Replay the edge's (epoch 1, seq 0) payload from 16's parent — exactly
  // what a retransmission racing the original looks like on the wire.
  const PeerId parent = d.nodes[16]->tree_parent(9);
  const std::uint64_t before =
      trace::counters().total(trace::CounterId::kDupsSuppressed);
  d.transport.send(parent, 16, ReliableDataMsg{9, 0, 777, 1, 0});
  d.simulator.run();
  EXPECT_EQ(delivered, 1);  // the duplicate never reached the application
  EXPECT_EQ(trace::counters().total(trace::CounterId::kDupsSuppressed),
            before + 1);
}

TEST(DataPlane, CumulativeAckTrimsSendBuffer) {
  CounterScope scope(64);
  NodeOptions options;
  options.reliability.ack_every = 4;
  ReliableDeployment d(64, 31, 0.0, options);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[16]->subscribe(9);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[16]->on_tree(9));
  const PeerId parent = d.nodes[16]->tree_parent(9);
  // Three ack windows' worth of traffic, paced so acks interleave.
  for (int i = 0; i < 12; ++i) {
    d.nodes[0]->publish(9, 2000 + i);
    d.simulator.run();
  }
  // Every window boundary acked: the buffer holds at most the unacked
  // tail, never the full history.
  EXPECT_LT(d.nodes[parent]->send_buffer_depth(9, 16), 12u);
  EXPECT_LE(d.nodes[parent]->send_buffer_depth(9, 16),
            options.reliability.ack_every);
  EXPECT_EQ(d.nodes[16]->expected_seq(9, parent), 12u);
  EXPECT_GT(trace::counters().total(trace::CounterId::kSendBufferHighWater),
            0u);
}

TEST(DataPlane, ValidationRejectsMalformedReliabilityOptions) {
  testing::SmallWorld world(4, 21);
  overlay::OverlayGraph graph(4);
  sim::Simulator simulator;
  Transport transport(simulator, *world.population, TransportOptions{},
                      world.rng);
  const auto reject = [&](const NodeOptions& options) {
    EXPECT_THROW(GroupCastNode(0, transport, graph, options, world.rng),
                 PreconditionError);
  };
  NodeOptions options = reliable_options();
  options.reliability.nack_jitter = 1.5;  // beyond the [0, 1] stretch
  reject(options);
  options = reliable_options();
  options.reliability.nack_jitter = -0.1;
  reject(options);
  options = reliable_options();
  options.reliability.max_nack_rounds = 0;  // a gap could never be skipped
  reject(options);
  options = reliable_options();
  options.reliability.ack_every = 0;  // no ack cadence at all
  reject(options);
  options = reliable_options();
  options.reliability.flow_control = true;
  options.reliability.window = 0;  // nothing could ever transmit
  reject(options);
  options = reliable_options();
  options.reliability.flow_control = true;
  options.reliability.window = 256;  // windowed data would fall off the
  options.reliability.send_buffer_cap = 128;  // retransmit buffer
  reject(options);
  // The same values are fine while the features are off.
  options = reliable_options();
  options.reliability.window = 256;
  GroupCastNode ok(0, transport, graph, options, world.rng);
}

// Satellite regression: kSendBufferHighWater tracks each directed edge's
// lifetime peak.  The old node-wide watermark swallowed the second edge's
// growth (it never beat the first edge's record), halving the reported
// peak memory of a two-child fan-out.
TEST(DataPlane, SendBufferHighWaterCountsEachEdge) {
  CounterScope scope(3);
  // Star: 0 is the root, 1 and 2 its only possible children.
  WiredDeployment d(3, {{0, 1}, {0, 2}},
                    [](PeerId) { return reliable_options(); });
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[1]->subscribe(9);
  d.nodes[2]->subscribe(9);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[1]->on_tree(9));
  ASSERT_TRUE(d.nodes[2]->on_tree(9));
  ASSERT_EQ(d.nodes[1]->tree_parent(9), 0u);
  ASSERT_EQ(d.nodes[2]->tree_parent(9), 0u);
  // Burst without running the simulator: both edges' buffers grow to 8
  // before any ack can trim them.
  const std::uint64_t kPayloads = 8;
  for (std::uint64_t i = 0; i < kPayloads; ++i) {
    d.nodes[0]->publish(9, 5000 + i);
  }
  EXPECT_EQ(d.nodes[0]->send_buffer_depth(9, 1), kPayloads);
  EXPECT_EQ(d.nodes[0]->send_buffer_depth(9, 2), kPayloads);
  // Per-edge accounting: the counter carries both peaks, not their max.
  EXPECT_EQ(
      trace::counters().total(trace::CounterId::kSendBufferHighWater),
      2 * kPayloads);
  d.simulator.run();
}

// Tentpole acceptance: a child acking at a tenth of the cadence backs data
// up at its parent.  With flow control on, the backlog parks behind the
// window and the per-edge sender buffer stays bounded by the window; every
// payload still arrives exactly once (the ack-overdue probe doubles as the
// ack clock that reopens the window).
TEST(DataPlane, SlowChildFlowControlBoundsSenderBuffer) {
  CounterScope scope(3);
  constexpr std::size_t kWindow = 4;
  const auto options_for = [](PeerId p) {
    NodeOptions options = reliable_options();
    options.reliability.flow_control = true;
    options.reliability.window = kWindow;
    options.reliability.ack_every = 2;
    if (p == 2) options.reliability.ack_every = 1000;  // the slow child
    return options;
  };
  WiredDeployment d(3, {{0, 1}, {0, 2}}, options_for);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[1]->subscribe(9);
  d.nodes[2]->subscribe(9);
  d.simulator.run();
  ASSERT_EQ(d.nodes[2]->tree_parent(9), 0u);
  std::map<std::uint64_t, int> slow_deliveries;
  d.nodes[2]->on_data(
      [&](GroupId, std::uint64_t id, PeerId) { ++slow_deliveries[id]; });
  const std::uint64_t kPayloads = 32;
  std::size_t max_depth = 0;
  for (std::uint64_t i = 0; i < kPayloads; ++i) {
    d.nodes[0]->publish(9, 6000 + i);
    max_depth = std::max(max_depth, d.nodes[0]->send_buffer_depth(9, 2));
  }
  // The burst parks behind the window instead of flooding the buffer.
  EXPECT_EQ(d.nodes[0]->pending_depth(9, 2), kPayloads - kWindow);
  EXPECT_GT(trace::counters().total(trace::CounterId::kFlowBlocked), 0u);
  // Probe rounds ack the slow child's progress and reopen the window.
  for (int step = 0; step < 120; ++step) {
    d.simulator.run_until(d.simulator.now() + sim::SimTime::seconds(1));
    max_depth = std::max(max_depth, d.nodes[0]->send_buffer_depth(9, 2));
    if (slow_deliveries.size() == kPayloads) break;
  }
  EXPECT_LE(max_depth, 2 * kWindow);  // the acceptance bound
  EXPECT_EQ(d.nodes[0]->pending_depth(9, 2), 0u);
  ASSERT_EQ(slow_deliveries.size(), kPayloads);
  for (std::uint64_t i = 0; i < kPayloads; ++i) {
    EXPECT_EQ(slow_deliveries[6000 + i], 1) << "payload " << 6000 + i;
  }
}

// The documented overflow mode with flow control off: the same slow child
// drives the parent's buffer to the cap, where the oldest unacked entries
// fall off — unrecoverable under loss.  (Zero loss here, so delivery still
// succeeds in order; the pin is the unbounded-versus-bounded depth.)
TEST(DataPlane, SlowChildWithoutFlowControlFillsBufferToCap) {
  CounterScope scope(3);
  constexpr std::size_t kCap = 8;
  const auto options_for = [](PeerId p) {
    NodeOptions options = reliable_options();
    options.reliability.send_buffer_cap = kCap;
    options.reliability.ack_every = p == 2 ? 1000 : 2;
    return options;
  };
  WiredDeployment d(3, {{0, 1}, {0, 2}}, options_for);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[2]->subscribe(9);
  d.simulator.run();
  ASSERT_EQ(d.nodes[2]->tree_parent(9), 0u);
  for (std::uint64_t i = 0; i < 32; ++i) d.nodes[0]->publish(9, 7000 + i);
  // Everything beyond the cap fell off the retransmit buffer.
  EXPECT_EQ(d.nodes[0]->send_buffer_depth(9, 2), kCap);
  EXPECT_EQ(d.nodes[0]->pending_depth(9, 2), 0u);  // nothing parks
  EXPECT_EQ(trace::counters().total(trace::CounterId::kFlowBlocked), 0u);
  d.simulator.run();
}

// Tentpole: a blocked edge throttles the publisher's path, not just its
// own hop.  On the chain 0 -> 1 -> 2 with 2 acking slowly, relay 1's edge
// to 2 blocks, 1 signals its parent, and the backlog accumulates at the
// publisher 0 instead of growing without bound at the relay.
TEST(DataPlane, ThrottlePropagatesUpTheTree) {
  CounterScope scope(3);
  const auto options_for = [](PeerId p) {
    NodeOptions options = reliable_options();
    options.reliability.flow_control = true;
    options.reliability.window = 2;
    options.reliability.ack_every = p == 2 ? 1000 : 1;
    return options;
  };
  WiredDeployment d(3, {{0, 1}, {1, 2}}, options_for);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[2]->subscribe(9);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[2]->on_tree(9));
  ASSERT_EQ(d.nodes[2]->tree_parent(9), 1u);
  ASSERT_EQ(d.nodes[1]->tree_parent(9), 0u);
  std::map<std::uint64_t, int> deliveries;
  d.nodes[2]->on_data(
      [&](GroupId, std::uint64_t id, PeerId) { ++deliveries[id]; });
  const std::uint64_t kPayloads = 16;
  for (std::uint64_t i = 0; i < kPayloads; ++i) {
    d.nodes[0]->publish(9, 8000 + i);
    // Pace the burst so the relay's FlowControlMsg can reach 0 mid-burst.
    d.simulator.run_until(d.simulator.now() + sim::SimTime::millis(20));
  }
  const auto snap = trace::counters().snapshot();
  const auto of = [&snap](PeerId node, trace::CounterId id) {
    return snap.per_node[node][static_cast<std::size_t>(id)];
  };
  EXPECT_GT(of(1, trace::CounterId::kFlowThrottles), 0u);  // 1 paused 0
  EXPECT_GT(of(0, trace::CounterId::kFlowBlocked), 0u);  // 0 parked data
  for (int step = 0; step < 120 && deliveries.size() < kPayloads; ++step) {
    d.simulator.run_until(d.simulator.now() + sim::SimTime::seconds(1));
  }
  ASSERT_EQ(deliveries.size(), kPayloads);
  for (std::uint64_t i = 0; i < kPayloads; ++i) {
    EXPECT_EQ(deliveries[8000 + i], 1) << "payload " << 8000 + i;
  }
  EXPECT_EQ(d.nodes[0]->pending_depth(9, 1), 0u);
  EXPECT_EQ(d.nodes[1]->pending_depth(9, 2), 0u);
}

TEST(DataPlane, AdaptiveMissThresholdFollowsFalsePositiveMath) {
  // docs/ROBUSTNESS.md: k consecutive misses are a false positive with
  // probability m^k; the threshold is the smallest k with m^k <= 1e-4,
  // clamped to [floor, 12].
  EXPECT_EQ(GroupCastNode::adaptive_miss_threshold(0.0, 2), 2u);   // quiet
  EXPECT_EQ(GroupCastNode::adaptive_miss_threshold(0.2, 2), 6u);
  EXPECT_EQ(GroupCastNode::adaptive_miss_threshold(0.5, 2), 12u);  // capped
  EXPECT_EQ(GroupCastNode::adaptive_miss_threshold(1.0, 2), 12u);
  EXPECT_EQ(GroupCastNode::adaptive_miss_threshold(0.001, 4), 4u);  // floor
  // A floor above the adaptive cap wins: adaptivity never narrows it.
  EXPECT_EQ(GroupCastNode::adaptive_miss_threshold(0.9, 15), 15u);
}

// The reliability counters (nacks_sent / retransmits / dups_suppressed /
// send_buffer_high_water) are part of the grid's determinism contract:
// byte-identical whether the recovery sweep runs sequentially or on four
// workers.
TEST(DataPlane, ReliableRecoveryGridIdenticalAcrossJobCounts) {
  metrics::ScenarioConfig point;
  point.peer_count = 200;
  point.groups = 1;
  point.seed = 4242;
  point.recovery.enabled = true;
  point.recovery.loss_probability = 0.2;
  point.recovery.crash_fraction = 0.15;
  point.recovery.reliable_data = true;

  metrics::GridOptions sequential;
  sequential.jobs = 1;
  sequential.repetitions = 2;
  sequential.counters = true;
  metrics::GridOptions parallel = sequential;
  parallel.jobs = 4;

  const std::vector<metrics::ScenarioConfig> points{point};
  const auto a = metrics::run_scenario_grid(points, sequential);
  const auto b = metrics::run_scenario_grid(points, parallel);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].delivery_ratio, b[0].delivery_ratio);
  EXPECT_EQ(a[0].delivery_ratio_stddev, b[0].delivery_ratio_stddev);
  EXPECT_EQ(a[0].reattached_fraction, b[0].reattached_fraction);
  EXPECT_EQ(a[0].counters.totals, b[0].counters.totals);
  EXPECT_EQ(a[0].counters.per_node, b[0].counters.per_node);
  // The run exercised the data plane, not just the control plane.
  EXPECT_GT(a[0].counters.total(trace::CounterId::kNacksSent), 0u);
  EXPECT_GT(a[0].counters.total(trace::CounterId::kRetransmits), 0u);
}

// The self-tuning transport keeps the same contract: with flow control,
// adaptive detection, and the slow-child impairment all on, the counters
// AND the new histograms (window_occupancy / estimated_loss / throttle_us)
// are byte-identical whatever the worker count.
TEST(DataPlane, SelfTuningGridIdenticalAcrossJobCounts) {
  metrics::ScenarioConfig point;
  point.peer_count = 200;
  point.groups = 1;
  point.seed = 4242;
  point.recovery.enabled = true;
  point.recovery.loss_probability = 0.05;
  point.recovery.reliable_data = true;
  point.recovery.flow_control = true;
  point.recovery.flow_window = 4;
  point.recovery.adaptive = true;
  point.recovery.slow_peer_stride = 5;
  point.recovery.speaking_payloads = 32;

  metrics::GridOptions sequential;
  sequential.jobs = 1;
  sequential.repetitions = 2;
  sequential.counters = true;
  sequential.histograms = true;
  metrics::GridOptions parallel = sequential;
  parallel.jobs = 4;

  const std::vector<metrics::ScenarioConfig> points{point};
  const auto a = metrics::run_scenario_grid(points, sequential);
  const auto b = metrics::run_scenario_grid(points, parallel);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].delivery_ratio, b[0].delivery_ratio);
  EXPECT_EQ(a[0].counters.totals, b[0].counters.totals);
  EXPECT_EQ(a[0].counters.per_node, b[0].counters.per_node);
  EXPECT_EQ(a[0].histograms, b[0].histograms);
  // The run exercised the new machinery, not just the legacy plane.
  EXPECT_GT(a[0].counters.total(trace::CounterId::kFlowBlocked), 0u);
  EXPECT_GT(
      a[0].histograms.of(trace::HistogramId::kWindowOccupancy).count, 0u);
  EXPECT_GT(
      a[0].histograms.of(trace::HistogramId::kEstimatedLoss).count, 0u);
}

}  // namespace
}  // namespace groupcast::core
