// Tests for the reliable data plane on tree edges (docs/ROBUSTNESS.md,
// "Data-plane reliability"): exactly-once delivery through loss via
// NACK/retransmit, sequence-layer duplicate suppression under retransmit
// races, cumulative-ack trimming of the per-child send buffer, and the
// determinism of the reliability counters across grid worker counts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/node.h"
#include "metrics/experiment.h"
#include "overlay/bootstrap.h"
#include "overlay/host_cache.h"
#include "test_helpers.h"
#include "trace/counters.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

/// A full node deployment over a joined GroupCast overlay, with the
/// reliable data plane switched on.
struct ReliableDeployment {
  testing::SmallWorld world;
  overlay::OverlayGraph graph;
  sim::Simulator simulator;
  Transport transport;
  std::vector<std::unique_ptr<GroupCastNode>> nodes;

  explicit ReliableDeployment(std::size_t peers = 64, std::uint64_t seed = 21,
                              double loss = 0.0, NodeOptions options = {})
      : world(peers, seed),
        graph(peers),
        transport(simulator, *world.population, TransportOptions{loss},
                  world.rng) {
    options.reliability.enabled = true;
    overlay::HostCacheServer cache(*world.population,
                                   overlay::HostCacheOptions{}, world.rng);
    overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                          overlay::BootstrapOptions{},
                                          world.rng);
    for (PeerId p = 0; p < peers; ++p) bootstrap.join(p);
    for (PeerId p = 0; p < peers; ++p) {
      nodes.push_back(std::make_unique<GroupCastNode>(
          p, transport, graph, options, world.rng));
      nodes.back()->start();
    }
  }
};

struct CounterScope {
  explicit CounterScope(std::size_t nodes) {
    trace::counters().enable(nodes);
  }
  ~CounterScope() {
    trace::counters().disable();
    trace::counters().reset();
  }
};

TEST(DataPlane, LossyPublishDeliversExactlyOnce) {
  CounterScope scope(64);
  ReliableDeployment d(64, 31, 0.15);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  const std::vector<PeerId> subscribers{4, 9, 16, 25, 36, 49};
  for (const auto s : subscribers) d.nodes[s]->subscribe(9);
  d.simulator.run();
  std::map<PeerId, std::map<std::uint64_t, int>> deliveries;
  std::vector<PeerId> attached;
  for (const auto s : subscribers) {
    // Loss can defeat even the retry ladder; score only attached members.
    if (!d.nodes[s]->is_subscribed(9) || !d.nodes[s]->on_tree(9)) continue;
    attached.push_back(s);
    d.nodes[s]->on_data([&deliveries, s](GroupId, std::uint64_t id, PeerId) {
      ++deliveries[s][id];
    });
  }
  ASSERT_GE(attached.size(), 3u);
  const int kPayloads = 30;
  for (int i = 0; i < kPayloads; ++i) {
    d.nodes[0]->publish(9, 1000 + i);
    d.simulator.run_until(d.simulator.now() + sim::SimTime::millis(50));
  }
  // Leave ample time for probe-driven tail recovery.
  d.simulator.run_until(d.simulator.now() + sim::SimTime::seconds(10));
  for (const auto s : attached) {
    for (int i = 0; i < kPayloads; ++i) {
      EXPECT_EQ(deliveries[s][1000 + i], 1)
          << "peer " << s << " payload " << 1000 + i;
    }
  }
  // 15% loss over ~200 tree-edge sends must have exercised the machinery.
  EXPECT_GT(trace::counters().total(trace::CounterId::kNacksSent), 0u);
  EXPECT_GT(trace::counters().total(trace::CounterId::kRetransmits), 0u);
}

TEST(DataPlane, SequenceLayerSuppressesRetransmitRaceDuplicates) {
  CounterScope scope(64);
  ReliableDeployment d(64, 31);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[16]->subscribe(9);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[16]->on_tree(9));
  int delivered = 0;
  d.nodes[16]->on_data([&](GroupId, std::uint64_t, PeerId) { ++delivered; });
  d.nodes[0]->publish(9, 777);
  d.simulator.run();
  EXPECT_EQ(delivered, 1);
  // Replay the edge's (epoch 1, seq 0) payload from 16's parent — exactly
  // what a retransmission racing the original looks like on the wire.
  const PeerId parent = d.nodes[16]->tree_parent(9);
  const std::uint64_t before =
      trace::counters().total(trace::CounterId::kDupsSuppressed);
  d.transport.send(parent, 16, ReliableDataMsg{9, 0, 777, 1, 0});
  d.simulator.run();
  EXPECT_EQ(delivered, 1);  // the duplicate never reached the application
  EXPECT_EQ(trace::counters().total(trace::CounterId::kDupsSuppressed),
            before + 1);
}

TEST(DataPlane, CumulativeAckTrimsSendBuffer) {
  CounterScope scope(64);
  NodeOptions options;
  options.reliability.ack_every = 4;
  ReliableDeployment d(64, 31, 0.0, options);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  d.nodes[16]->subscribe(9);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[16]->on_tree(9));
  const PeerId parent = d.nodes[16]->tree_parent(9);
  // Three ack windows' worth of traffic, paced so acks interleave.
  for (int i = 0; i < 12; ++i) {
    d.nodes[0]->publish(9, 2000 + i);
    d.simulator.run();
  }
  // Every window boundary acked: the buffer holds at most the unacked
  // tail, never the full history.
  EXPECT_LT(d.nodes[parent]->send_buffer_depth(9, 16), 12u);
  EXPECT_LE(d.nodes[parent]->send_buffer_depth(9, 16),
            options.reliability.ack_every);
  EXPECT_EQ(d.nodes[16]->expected_seq(9, parent), 12u);
  EXPECT_GT(trace::counters().total(trace::CounterId::kSendBufferHighWater),
            0u);
}

// The reliability counters (nacks_sent / retransmits / dups_suppressed /
// send_buffer_high_water) are part of the grid's determinism contract:
// byte-identical whether the recovery sweep runs sequentially or on four
// workers.
TEST(DataPlane, ReliableRecoveryGridIdenticalAcrossJobCounts) {
  metrics::ScenarioConfig point;
  point.peer_count = 200;
  point.groups = 1;
  point.seed = 4242;
  point.recovery.enabled = true;
  point.recovery.loss_probability = 0.2;
  point.recovery.crash_fraction = 0.15;
  point.recovery.reliable_data = true;

  metrics::GridOptions sequential;
  sequential.jobs = 1;
  sequential.repetitions = 2;
  sequential.counters = true;
  metrics::GridOptions parallel = sequential;
  parallel.jobs = 4;

  const std::vector<metrics::ScenarioConfig> points{point};
  const auto a = metrics::run_scenario_grid(points, sequential);
  const auto b = metrics::run_scenario_grid(points, parallel);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].delivery_ratio, b[0].delivery_ratio);
  EXPECT_EQ(a[0].delivery_ratio_stddev, b[0].delivery_ratio_stddev);
  EXPECT_EQ(a[0].reattached_fraction, b[0].reattached_fraction);
  EXPECT_EQ(a[0].counters.totals, b[0].counters.totals);
  EXPECT_EQ(a[0].counters.per_node, b[0].counters.per_node);
  // The run exercised the data plane, not just the control plane.
  EXPECT_GT(a[0].counters.total(trace::CounterId::kNacksSent), 0u);
  EXPECT_GT(a[0].counters.total(trace::CounterId::kRetransmits), 0u);
}

}  // namespace
}  // namespace groupcast::core
