// Tests for the parallel experiment grid (metrics::run_scenario_grid and
// the run_scenario_averaged wrapper): the determinism contract — results
// byte-identical for every job count, including counter snapshots — the
// seed ladder, the reduction semantics, and error propagation out of the
// worker pool.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "metrics/experiment.h"
#include "trace/counters.h"
#include "util/require.h"
#include "util/stats.h"

namespace groupcast {
namespace {

metrics::ScenarioConfig small_config(std::uint64_t seed = 501) {
  metrics::ScenarioConfig config;
  config.peer_count = 300;
  config.groups = 2;
  config.seed = seed;
  return config;
}

/// Exact (bitwise) equality over every result field.  EXPECT_EQ on
/// doubles, not EXPECT_NEAR: the contract is identical results, not
/// close ones.
void expect_identical(const metrics::ScenarioResult& a,
                      const metrics::ScenarioResult& b) {
  EXPECT_EQ(a.advertisement_messages, b.advertisement_messages);
  EXPECT_EQ(a.subscription_messages, b.subscription_messages);
  EXPECT_EQ(a.receiving_rate, b.receiving_rate);
  EXPECT_EQ(a.subscription_success_rate, b.subscription_success_rate);
  EXPECT_EQ(a.lookup_latency_ms, b.lookup_latency_ms);
  EXPECT_EQ(a.delay_penalty, b.delay_penalty);
  EXPECT_EQ(a.link_stress, b.link_stress);
  EXPECT_EQ(a.node_stress, b.node_stress);
  EXPECT_EQ(a.overload_index, b.overload_index);
  EXPECT_EQ(a.avg_tree_depth, b.avg_tree_depth);
  EXPECT_EQ(a.avg_tree_nodes, b.avg_tree_nodes);
  EXPECT_EQ(a.repair_edges, b.repair_edges);
  EXPECT_EQ(a.delay_penalty_group_stddev, b.delay_penalty_group_stddev);
  EXPECT_EQ(a.overload_index_group_stddev, b.overload_index_group_stddev);
  EXPECT_EQ(a.link_stress_group_stddev, b.link_stress_group_stddev);
  EXPECT_EQ(a.lookup_latency_group_stddev, b.lookup_latency_group_stddev);
  EXPECT_EQ(a.delay_penalty_stddev, b.delay_penalty_stddev);
  EXPECT_EQ(a.overload_index_stddev, b.overload_index_stddev);
  EXPECT_EQ(a.link_stress_stddev, b.link_stress_stddev);
  EXPECT_TRUE(a.counters == b.counters);
}

std::vector<metrics::ScenarioConfig> two_point_grid() {
  std::vector<metrics::ScenarioConfig> points;
  points.push_back(small_config(501));
  auto other = small_config(9000);
  other.overlay = core::OverlayKind::kRandomPowerLaw;
  other.scheme = core::AnnouncementScheme::kNssa;
  points.push_back(other);
  return points;
}

// ----------------------------------------------------------- determinism

TEST(ExperimentGrid, ParallelIsByteIdenticalToSequential) {
  // The headline golden: the same grid through jobs = 1, 8, and 0 (all
  // hardware threads), with counters on, must produce identical results —
  // every metric field and every counter cell.
  const auto points = two_point_grid();
  metrics::GridOptions options;
  options.repetitions = 3;
  options.counters = true;

  options.jobs = 1;
  const auto sequential = metrics::run_scenario_grid(points, options);
  options.jobs = 8;
  const auto parallel = metrics::run_scenario_grid(points, options);
  options.jobs = 0;
  const auto all_cores = metrics::run_scenario_grid(points, options);

  ASSERT_EQ(sequential.size(), points.size());
  ASSERT_EQ(parallel.size(), points.size());
  ASSERT_EQ(all_cores.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_identical(sequential[p], parallel[p]);
    expect_identical(sequential[p], all_cores[p]);
    // Counters were requested, so the merged snapshots must be real.
    EXPECT_GT(sequential[p].counters.total(trace::CounterId::kMessagesSent),
              0u);
  }
}

TEST(ExperimentGrid, RepeatedInvocationIsIdentical) {
  const auto points = two_point_grid();
  metrics::GridOptions options;
  options.repetitions = 2;
  options.jobs = 4;
  const auto first = metrics::run_scenario_grid(points, options);
  const auto second = metrics::run_scenario_grid(points, options);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t p = 0; p < first.size(); ++p) {
    expect_identical(first[p], second[p]);
  }
}

TEST(ExperimentGrid, ResultsFollowPointOrder) {
  const auto points = two_point_grid();
  const auto results = metrics::run_scenario_grid(points, {});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.seed, points[0].seed);
  EXPECT_EQ(results[0].config.overlay, points[0].overlay);
  EXPECT_EQ(results[1].config.seed, points[1].seed);
  EXPECT_EQ(results[1].config.overlay, points[1].overlay);
}

// ----------------------------------------------------------- seed ladder

TEST(ExperimentGrid, AveragedUsesEachLadderSeedExactlyOnce) {
  // run_scenario_averaged over k repetitions must equal the reduction of
  // exactly the runs seed, seed+1, ..., seed+k-1 — each once, in order.
  const auto config = small_config(7700);
  const std::size_t reps = 3;

  std::vector<metrics::ScenarioResult> manual;
  for (std::size_t r = 0; r < reps; ++r) {
    auto rep = config;
    rep.seed = config.seed + r;
    manual.push_back(metrics::run_scenario(rep));
  }
  const auto expected = metrics::reduce_scenario_repetitions(config, manual);

  const auto sequential = metrics::run_scenario_averaged(config, reps, 1);
  const auto parallel = metrics::run_scenario_averaged(config, reps, 8);
  expect_identical(expected, sequential);
  expect_identical(expected, parallel);

  // Same ladder, different base seed: results must differ, proving the
  // ladder is anchored at config.seed rather than a fixed constant.
  const auto shifted =
      metrics::run_scenario_averaged(small_config(7701), reps, 1);
  EXPECT_NE(sequential.advertisement_messages,
            shifted.advertisement_messages);
}

TEST(ExperimentGrid, SingleRepetitionMatchesPlainRunScenario) {
  const auto config = small_config(42);
  const auto direct = metrics::run_scenario(config);
  const auto averaged = metrics::run_scenario_averaged(config, 1, 4);
  expect_identical(direct, averaged);
}

TEST(ExperimentGrid, ReductionAveragesMeansAndSumsRepairEdges) {
  const auto config = small_config(88);
  std::vector<metrics::ScenarioResult> reps;
  for (std::size_t r = 0; r < 2; ++r) {
    auto rep = config;
    rep.seed = config.seed + r;
    reps.push_back(metrics::run_scenario(rep));
  }
  const auto reduced = metrics::reduce_scenario_repetitions(config, reps);
  EXPECT_DOUBLE_EQ(reduced.delay_penalty,
                   reps[0].delay_penalty / 2.0 + reps[1].delay_penalty / 2.0);
  EXPECT_EQ(reduced.repair_edges,
            reps[0].repair_edges + reps[1].repair_edges);
  // Cross-repetition stddev comes from the per-repetition values.
  util::Summary delays;
  delays.add(reps[0].delay_penalty);
  delays.add(reps[1].delay_penalty);
  EXPECT_DOUBLE_EQ(reduced.delay_penalty_stddev, delays.stddev());
}

// -------------------------------------------------------------- counters

TEST(ExperimentGrid, GridCountersMatchManuallyMergedRuns) {
  const auto config = small_config(1234);
  const std::size_t reps = 2;

  // Manual reference: run each repetition against its own registry and
  // merge the snapshots.
  trace::CounterSnapshot expected;
  for (std::size_t r = 0; r < reps; ++r) {
    auto rep = config;
    rep.seed = config.seed + r;
    trace::CounterRegistry local;
    local.enable(rep.peer_count);
    trace::ScopedCounterRegistry guard(local);
    expected.merge(metrics::run_scenario(rep).counters);
  }

  metrics::GridOptions options;
  options.repetitions = reps;
  options.jobs = 4;
  options.counters = true;
  const auto results = metrics::run_scenario_grid(
      std::span<const metrics::ScenarioConfig>(&config, 1), options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].counters == expected);
  EXPECT_GT(expected.total(trace::CounterId::kMessagesSent), 0u);
}

TEST(ExperimentGrid, AveragedFoldsCountersIntoAmbientRegistry) {
  // run_scenario_averaged collects counters whenever the calling thread's
  // registry is enabled, and folds the merged snapshot back into it —
  // the contract sim_driver --trace_out relies on.
  const auto config = small_config(555);
  trace::counters().enable(config.peer_count);
  const auto result = metrics::run_scenario_averaged(config, 2, 4);
  const auto ambient = trace::counters().snapshot();
  trace::counters().disable();
  trace::counters().reset();

  EXPECT_GT(result.counters.total(trace::CounterId::kMessagesSent), 0u);
  EXPECT_TRUE(ambient == result.counters);
}

TEST(ExperimentGrid, CountersOffByDefault) {
  const auto config = small_config(556);
  const auto results = metrics::run_scenario_grid(
      std::span<const metrics::ScenarioConfig>(&config, 1), {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].counters.total(trace::CounterId::kMessagesSent), 0u);
  EXPECT_TRUE(results[0].counters.per_node.empty());
}

// ------------------------------------------------------ error propagation

TEST(ExperimentGrid, WorkerExceptionsReachTheCaller) {
  // peer_count = 1 violates the middleware's precondition; the failure
  // happens on a pool thread and must surface as the original exception
  // type on the calling thread.
  std::vector<metrics::ScenarioConfig> points = two_point_grid();
  auto bad = small_config(1);
  bad.peer_count = 1;
  points.push_back(bad);
  metrics::GridOptions options;
  options.jobs = 4;
  EXPECT_THROW(metrics::run_scenario_grid(points, options),
               PreconditionError);
  options.jobs = 1;
  EXPECT_THROW(metrics::run_scenario_grid(points, options),
               PreconditionError);
}

TEST(ExperimentGrid, EmptyGridAndBadOptions) {
  EXPECT_TRUE(metrics::run_scenario_grid({}, {}).empty());
  const auto config = small_config(2);
  metrics::GridOptions zero_reps;
  zero_reps.repetitions = 0;
  EXPECT_THROW(metrics::run_scenario_grid(
                   std::span<const metrics::ScenarioConfig>(&config, 1),
                   zero_reps),
               PreconditionError);
  EXPECT_THROW(metrics::run_scenario_averaged(config, 0),
               PreconditionError);
}

TEST(ExperimentGrid, MoreJobsThanWorkItems) {
  // Pool size clamps to the item count; results stay correct.
  const auto config = small_config(31);
  metrics::GridOptions options;
  options.jobs = 64;
  const auto wide = metrics::run_scenario_grid(
      std::span<const metrics::ScenarioConfig>(&config, 1), options);
  options.jobs = 1;
  const auto narrow = metrics::run_scenario_grid(
      std::span<const metrics::ScenarioConfig>(&config, 1), options);
  ASSERT_EQ(wide.size(), 1u);
  expect_identical(narrow[0], wide[0]);
}

}  // namespace
}  // namespace groupcast
