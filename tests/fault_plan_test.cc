// Tests for deterministic fault injection: the fault-plan grammar and
// queries, the injector's crash scheduling, partition / burst-loss drops
// at the transport, and the option-validation regressions that ride along
// (ChurnOptions::failure_fraction, TransportOptions::loss_probability).
#include <gtest/gtest.h>

#include "core/fault_injection.h"
#include "core/transport.h"
#include "overlay/bootstrap.h"
#include "overlay/churn.h"
#include "overlay/graph.h"
#include "overlay/host_cache.h"
#include "sim/fault_plan.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast {
namespace {

using core::Envelope;
using core::Transport;
using core::TransportOptions;
using overlay::PeerId;
using sim::FaultPlan;
using sim::SimTime;

// ------------------------------------------------------------ the grammar

TEST(FaultPlan, ParsesEveryClauseKind) {
  const auto plan = FaultPlan::parse(
      "crash@12.5s:7; partition@30s-60s:1,2,3|4,5; burst@45s-48s:0.9");
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].at, SimTime::seconds(12.5));
  EXPECT_EQ(plan.crashes[0].node, 7u);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].begin, SimTime::seconds(30.0));
  EXPECT_EQ(plan.partitions[0].end, SimTime::seconds(60.0));
  EXPECT_EQ(plan.partitions[0].side_a,
            (std::vector<sim::FaultNodeId>{1, 2, 3}));
  EXPECT_EQ(plan.partitions[0].side_b,
            (std::vector<sim::FaultNodeId>{4, 5}));
  ASSERT_EQ(plan.bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.bursts[0].loss_probability, 0.9);
}

TEST(FaultPlan, AcceptsMsSuffixNewlinesAndLooseWhitespace) {
  const auto plan = FaultPlan::parse(
      "  crash @ 250ms : 3 \n\n burst@1s-2s:0.5 ;\n crash@2s:4 ");
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].at, SimTime::millis(250.0));
  EXPECT_EQ(plan.crashes[1].node, 4u);
  EXPECT_EQ(plan.bursts.size(), 1u);
}

TEST(FaultPlan, TextRoundTrips) {
  const auto plan = FaultPlan::parse(
      "crash@12.5s:7; partition@30s-60s:1,2,3|4,5; burst@45s-48s:0.9");
  EXPECT_EQ(FaultPlan::parse(plan.to_text()), plan);
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("meteor@1s:3"), PreconditionError);
  EXPECT_THROW(FaultPlan::parse("crash 1s:3"), PreconditionError);
  EXPECT_THROW(FaultPlan::parse("crash@1s"), PreconditionError);
  EXPECT_THROW(FaultPlan::parse("partition@5s-4s:1|2"), PreconditionError);
  EXPECT_THROW(FaultPlan::parse("partition@1s-2s:|2"), PreconditionError);
  EXPECT_THROW(FaultPlan::parse("burst@1s-2s:1.5"), PreconditionError);
  EXPECT_THROW(FaultPlan::parse("crash@1s:3 extra"), PreconditionError);
}

TEST(FaultPlan, QueriesRespectHalfOpenWindows) {
  const auto plan =
      FaultPlan::parse("partition@1s-2s:1|2; burst@3s-4s:0.25");
  EXPECT_FALSE(sim::partitioned(plan, 1, 2, SimTime::millis(999.0)));
  EXPECT_TRUE(sim::partitioned(plan, 1, 2, SimTime::seconds(1.0)));
  EXPECT_TRUE(sim::partitioned(plan, 2, 1, SimTime::seconds(1.5)));
  EXPECT_FALSE(sim::partitioned(plan, 1, 2, SimTime::seconds(2.0)));
  EXPECT_FALSE(sim::partitioned(plan, 1, 3, SimTime::seconds(1.5)));
  EXPECT_DOUBLE_EQ(sim::burst_loss(plan, SimTime::seconds(3.5)), 0.25);
  EXPECT_DOUBLE_EQ(sim::burst_loss(plan, SimTime::seconds(4.0)), 0.0);
}

TEST(FaultPlan, MergeAppendsAndValidateThrows) {
  auto plan = FaultPlan::parse("crash@1s:1");
  plan.merge(FaultPlan::parse("crash@2s:2; burst@1s-2s:0.1"));
  EXPECT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.bursts.size(), 1u);

  FaultPlan bad;
  bad.bursts.push_back(
      sim::BurstLoss{SimTime::seconds(2.0), SimTime::seconds(1.0), 0.5});
  EXPECT_THROW(bad.validate(), PreconditionError);
}

// ---------------------------------------------------------- the injector

struct TransportFixture {
  testing::SmallWorld world;
  sim::Simulator simulator;
  Transport transport;
  std::vector<Envelope> inbox;

  TransportFixture()
      : world(16, 5),
        transport(simulator, *world.population, TransportOptions{},
                  world.rng) {}

  void attach(PeerId peer) {
    transport.register_node(
        peer, [this](const Envelope& e) { inbox.push_back(e); });
  }
};

TEST(FaultInjector, SchedulesCrashesDeterministically) {
  TransportFixture f;
  core::FaultInjector injector(FaultPlan::parse("crash@1s:3; crash@2s:5"),
                               f.transport);
  std::vector<std::pair<PeerId, std::int64_t>> crashes;
  injector.arm([&](PeerId victim) {
    crashes.emplace_back(victim, f.simulator.now().as_micros());
  });
  f.simulator.run();
  ASSERT_EQ(crashes.size(), 2u);
  EXPECT_EQ(crashes[0],
            std::make_pair(PeerId{3}, SimTime::seconds(1.0).as_micros()));
  EXPECT_EQ(crashes[1],
            std::make_pair(PeerId{5}, SimTime::seconds(2.0).as_micros()));
  EXPECT_EQ(injector.crashed(),
            (std::vector<PeerId>{3, 5}));
}

TEST(FaultInjector, PartitionWindowBlocksCrossSideTraffic) {
  TransportFixture f;
  f.attach(1);
  f.attach(2);
  f.attach(3);
  core::FaultInjector injector(
      FaultPlan::parse("partition@0s-1s:1|2"), f.transport);
  // Cross-partition send: dropped at send time.
  f.transport.send(1, 2, core::HeartbeatMsg{9});
  // Same-side / unaffected peers still talk.
  f.transport.send(1, 3, core::HeartbeatMsg{9});
  f.simulator.run_until(SimTime::seconds(1.0));
  ASSERT_EQ(f.inbox.size(), 1u);
  EXPECT_EQ(f.inbox[0].to, 3u);
  EXPECT_EQ(f.transport.messages_lost(), 1u);
  // After the window closes the same edge works again.
  f.simulator.schedule_at(SimTime::seconds(1.0), [&f] {
    f.transport.send(1, 2, core::HeartbeatMsg{9});
  });
  f.simulator.run();
  EXPECT_EQ(f.inbox.size(), 2u);
}

TEST(FaultInjector, BurstLossDropsEverythingAtProbabilityOne) {
  TransportFixture f;
  f.attach(1);
  f.attach(2);
  core::FaultInjector injector(FaultPlan::parse("burst@0s-1s:1.0"),
                               f.transport);
  f.transport.send(1, 2, core::HeartbeatMsg{9});
  f.simulator.schedule_at(SimTime::seconds(1.0), [&f] {
    f.transport.send(1, 2, core::HeartbeatMsg{9});
  });
  f.simulator.run();
  // The in-window send died, the post-window one arrived.
  ASSERT_EQ(f.inbox.size(), 1u);
  EXPECT_EQ(f.transport.messages_lost(), 1u);
}

// ------------------------------------------------- transport crash semantics

TEST(Transport, InFlightMessagesFromCrashedOriginAreSuppressed) {
  TransportFixture f;
  f.attach(2);
  f.attach(3);
  // 2 sends, then crashes before the message is delivered: the packet
  // must die with its origin instead of arriving from a ghost.
  f.transport.send(2, 3, core::HeartbeatMsg{9});
  f.transport.unregister_node(2);
  f.simulator.run();
  EXPECT_TRUE(f.inbox.empty());
  EXPECT_EQ(f.transport.messages_sent(), 1u);
}

TEST(Transport, GracefulDetachLetsInFlightSendsLand) {
  TransportFixture f;
  f.attach(2);
  f.attach(3);
  // 2 sends a final control message and detaches gracefully: unlike a
  // crash, the already-sent packet must still reach its peer.
  f.transport.send(2, 3, core::HeartbeatMsg{9});
  f.transport.unregister_node(2, core::DetachMode::kGraceful);
  f.simulator.run();
  ASSERT_EQ(f.inbox.size(), 1u);
  EXPECT_EQ(f.inbox[0].from, 2u);
}

TEST(Transport, ReRegisteringAfterCrashStartsACleanGeneration) {
  TransportFixture f;
  f.attach(2);
  f.attach(3);
  f.transport.send(2, 3, core::HeartbeatMsg{9});
  f.transport.unregister_node(2);
  f.attach(2);
  // The pre-crash packet stays dead, but the reincarnated node's traffic
  // flows normally.
  f.transport.send(2, 3, core::HeartbeatMsg{9});
  f.simulator.run();
  ASSERT_EQ(f.inbox.size(), 1u);
  EXPECT_EQ(f.inbox[0].from, 2u);
}

TEST(Transport, SendsFromNeverRegisteredDriversStillDeliver) {
  // Test drivers inject messages from peers that never registered a
  // handler; those must keep flowing (only a *crash* suppresses).
  TransportFixture f;
  f.attach(3);
  f.transport.send(0, 3, core::HeartbeatMsg{9});
  f.simulator.run();
  EXPECT_EQ(f.inbox.size(), 1u);
}

// ------------------------------------------------- option-range regressions

TEST(TransportOptionsValidation, RejectsOutOfRangeLossProbability) {
  testing::SmallWorld world(8, 1);
  sim::Simulator simulator;
  TransportOptions options;
  options.loss_probability = 1.5;
  EXPECT_THROW(
      Transport(simulator, *world.population, options, world.rng),
      PreconditionError);
  options.loss_probability = -0.1;
  EXPECT_THROW(
      Transport(simulator, *world.population, options, world.rng),
      PreconditionError);
}

TEST(ChurnOptionsValidation, RejectsOutOfRangeFailureFraction) {
  testing::SmallWorld world(8, 2);
  sim::Simulator simulator;
  overlay::OverlayGraph graph(8);
  overlay::HostCacheServer cache(*world.population,
                                 overlay::HostCacheOptions{}, world.rng);
  overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                        overlay::BootstrapOptions{},
                                        world.rng);
  overlay::ChurnOptions options;
  options.failure_fraction = 1.5;
  EXPECT_THROW(overlay::ChurnModel(simulator, bootstrap, options, world.rng),
               PreconditionError);
  options.failure_fraction = -0.5;
  EXPECT_THROW(overlay::ChurnModel(simulator, bootstrap, options, world.rng),
               PreconditionError);
}

}  // namespace
}  // namespace groupcast
