// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/require.h"

namespace groupcast::util {
namespace {

Flags declared() {
  Flags flags;
  flags.declare("peers", "overlay size", "1000");
  flags.declare("overlay", "which overlay", "groupcast");
  flags.declare("fraction", "SSA fraction", "0.35");
  flags.declare("csv", "emit csv", "false");
  return flags;
}

bool parse(Flags& flags, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, DefaultsApplyWhenUnset) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_EQ(flags.get_int("peers"), 1000);
  EXPECT_EQ(flags.get_string("overlay"), "groupcast");
  EXPECT_DOUBLE_EQ(flags.get_double("fraction"), 0.35);
  EXPECT_FALSE(flags.get_bool("csv"));
  EXPECT_FALSE(flags.provided("peers"));
}

TEST(Flags, EqualsFormParses) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"--peers=4000", "--fraction=0.5"}));
  EXPECT_EQ(flags.get_int("peers"), 4000);
  EXPECT_DOUBLE_EQ(flags.get_double("fraction"), 0.5);
  EXPECT_TRUE(flags.provided("peers"));
}

TEST(Flags, SpaceFormParses) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"--peers", "250", "--overlay", "random"}));
  EXPECT_EQ(flags.get_int("peers"), 250);
  EXPECT_EQ(flags.get_string("overlay"), "random");
}

TEST(Flags, BareBooleanIsTrue) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"--csv"}));
  EXPECT_TRUE(flags.get_bool("csv"));
}

TEST(Flags, BooleanSpellings) {
  for (const char* spelling : {"true", "1", "yes", "on"}) {
    auto flags = declared();
    const std::string arg = std::string("--csv=") + spelling;
    ASSERT_TRUE(parse(flags, {arg.c_str()}));
    EXPECT_TRUE(flags.get_bool("csv")) << spelling;
  }
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"--csv=false"}));
  EXPECT_FALSE(flags.get_bool("csv"));
}

TEST(Flags, UnknownFlagFails) {
  auto flags = declared();
  EXPECT_FALSE(parse(flags, {"--nonsense=1"}));
  EXPECT_NE(flags.error().find("nonsense"), std::string::npos);
}

TEST(Flags, HelpRequested) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"--help"}));
  EXPECT_TRUE(flags.help_requested());
  const auto text = flags.help("prog");
  EXPECT_NE(text.find("--peers"), std::string::npos);
  EXPECT_NE(text.find("overlay size"), std::string::npos);
}

TEST(Flags, PositionalArgumentsCollected) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"input.txt", "--peers=10", "more"}));
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(Flags, MalformedNumberFallsBackToDefault) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"--peers=abc"}));
  EXPECT_EQ(flags.get_int("peers"), 1000);
}

TEST(Flags, UndeclaredAccessThrows) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_THROW(flags.get_string("missing"), PreconditionError);
}

TEST(Flags, DeclareValidation) {
  Flags flags;
  EXPECT_THROW(flags.declare("--bad", "leading dashes"), PreconditionError);
  flags.declare("x", "first");
  EXPECT_THROW(flags.declare("x", "again"), PreconditionError);
}

TEST(Flags, LastValueWins) {
  auto flags = declared();
  ASSERT_TRUE(parse(flags, {"--peers=1", "--peers=2"}));
  EXPECT_EQ(flags.get_int("peers"), 2);
}

}  // namespace
}  // namespace groupcast::util
