// Tests for the sim-time histogram registry, the flight recorder, the
// provenance packing, and the determinism contract the grid harness
// relies on: log-binned integer merges are order-independent, scoped
// injection isolates per-run state, and --jobs=1 vs --jobs=4 produce
// identical histograms and timelines.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "metrics/experiment.h"
#include "trace/event.h"
#include "trace/flight_recorder.h"
#include "trace/histogram.h"

namespace {

using namespace groupcast;
using trace::FlightFrame;
using trace::HistogramData;
using trace::HistogramId;

// Every test leaves the thread-default facilities disabled and empty.
class FacilitiesGuard {
 public:
  FacilitiesGuard() { reset(); }
  ~FacilitiesGuard() { reset(); }

 private:
  static void reset() {
    trace::counters().disable();
    trace::counters().reset();
    trace::histograms().disable();
    trace::histograms().reset();
    trace::flight_recorder().disable();
    trace::flight_recorder().reset();
  }
};

TEST(HistogramBin, Log2Mapping) {
  EXPECT_EQ(trace::histogram_bin(0), 0u);
  EXPECT_EQ(trace::histogram_bin(1), 1u);
  EXPECT_EQ(trace::histogram_bin(2), 2u);
  EXPECT_EQ(trace::histogram_bin(3), 2u);
  EXPECT_EQ(trace::histogram_bin(4), 3u);
  EXPECT_EQ(trace::histogram_bin(1023), 10u);
  EXPECT_EQ(trace::histogram_bin(1024), 11u);
  // The last bin absorbs everything with bit_width >= 64.
  EXPECT_EQ(trace::histogram_bin(~std::uint64_t{0}), 63u);
  // Bin floors invert the mapping at each bin's lower edge.
  for (std::size_t bin = 0; bin < trace::kHistogramBins - 1; ++bin) {
    EXPECT_EQ(trace::histogram_bin(trace::histogram_bin_floor(bin)), bin);
  }
}

TEST(HistogramData, RecordTracksExactSummaries) {
  HistogramData h;
  for (const std::uint64_t v : {7u, 0u, 100u, 3u}) h.record(v);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 110u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 27.5);
  EXPECT_EQ(h.percentile(0.0), 0u);    // exact min
  EXPECT_EQ(h.percentile(1.0), 100u);  // exact max
}

TEST(HistogramData, MergeIsOrderIndependent) {
  const std::vector<std::uint64_t> samples = {1, 5, 9, 0, 1u << 20, 77, 3};
  HistogramData all;
  for (const auto v : samples) all.record(v);

  HistogramData a, b;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 2 == 0 ? a : b).record(samples[i]);
  }
  HistogramData ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab, all);
}

TEST(HistogramRegistry, DisabledRecordIsANoOp) {
  FacilitiesGuard guard;
  trace::histograms().record(HistogramId::kHopCount, 3);
  EXPECT_EQ(trace::histograms().of(HistogramId::kHopCount).count, 0u);

  trace::histograms().enable();
  trace::histograms().record(HistogramId::kHopCount, 3);
  EXPECT_EQ(trace::histograms().of(HistogramId::kHopCount).count, 1u);
}

TEST(HistogramRegistry, ScopedInjectionRedirectsAndRestores) {
  FacilitiesGuard guard;
  trace::HistogramRegistry isolated;
  isolated.enable();
  {
    trace::ScopedHistogramRegistry scope(isolated);
    trace::histograms().record(HistogramId::kEdgeDelayUs, 42);
  }
  EXPECT_EQ(isolated.of(HistogramId::kEdgeDelayUs).count, 1u);
  // The thread default saw nothing and is still disabled.
  EXPECT_EQ(trace::histograms().of(HistogramId::kEdgeDelayUs).count, 0u);
  EXPECT_FALSE(trace::histograms().enabled());
}

TEST(Provenance, PackUnpackRoundTrips) {
  const auto packed = trace::pack_provenance(1234, 0xDEADBEEF, 7);
  const auto p = trace::unpack_provenance(packed);
  EXPECT_EQ(p.origin, 1234u);
  EXPECT_EQ(p.payload_id, 0xDEADBEEFu);
  EXPECT_EQ(p.hops, 7u);
  // payload_id is truncated to its low 32 bits by design.
  const auto wide =
      trace::unpack_provenance(trace::pack_provenance(9, 0x1'00000002, 1));
  EXPECT_EQ(wide.payload_id, 2u);
}

TEST(FlightRecorder, RingBoundsAndSameStampOverwrite) {
  FacilitiesGuard guard;
  trace::counters().enable(4);
  trace::flight_recorder().enable(/*capacity=*/3);

  for (std::int64_t t = 0; t < 5; ++t) {
    trace::counters().incr(0, trace::CounterId::kMessagesSent);
    trace::flight_recorder().capture(t * 1000);
  }
  auto frames = trace::flight_recorder().frames();
  ASSERT_EQ(frames.size(), 3u);  // oldest two dropped
  EXPECT_EQ(frames.front().t_us, 2000);
  EXPECT_EQ(frames.back().t_us, 4000);
  const auto sent = static_cast<std::size_t>(trace::CounterId::kMessagesSent);
  EXPECT_EQ(frames.back().counters[sent], 5u);

  // Re-capturing the newest stamp overwrites instead of appending.
  trace::counters().incr(0, trace::CounterId::kMessagesSent);
  trace::flight_recorder().capture(4000);
  frames = trace::flight_recorder().frames();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames.back().counters[sent], 6u);
}

TEST(FlightRecorder, MergeTimelinesSumsEqualStamps) {
  const auto frame = [](std::int64_t t, std::uint64_t sent) {
    FlightFrame f;
    f.t_us = t;
    f.counters[static_cast<std::size_t>(trace::CounterId::kMessagesSent)] =
        sent;
    return f;
  };
  std::vector<FlightFrame> a = {frame(0, 1), frame(10, 4)};
  const std::vector<FlightFrame> b = {frame(5, 2), frame(10, 6)};
  trace::merge_timelines(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].t_us, 0);
  EXPECT_EQ(a[1].t_us, 5);
  EXPECT_EQ(a[2].t_us, 10);
  EXPECT_EQ(a[2].counters[static_cast<std::size_t>(
                trace::CounterId::kMessagesSent)],
            10u);

  // Merging in the other order gives the same timeline.
  std::vector<FlightFrame> c = b;
  trace::merge_timelines(c, {frame(0, 1), frame(10, 4)});
  EXPECT_EQ(a, c);
}

// The acceptance bar for the grid harness: a recovery sweep collects the
// same histograms and the same timeline whatever the job count.
TEST(GridDeterminism, HistogramsAndTimelinesMatchAcrossJobCounts) {
  FacilitiesGuard guard;
  metrics::ScenarioConfig config;
  config.peer_count = 200;
  config.groups = 1;
  config.seed = 4242;
  config.recovery.enabled = true;
  config.recovery.loss_probability = 0.1;
  config.recovery.crash_fraction = 0.15;
  config.recovery.reliable_data = true;
  const std::vector<metrics::ScenarioConfig> points = {config};

  metrics::GridOptions sequential;
  sequential.jobs = 1;
  sequential.repetitions = 2;
  sequential.histograms = true;
  sequential.timeline = true;
  metrics::GridOptions parallel = sequential;
  parallel.jobs = 4;

  const auto a = metrics::run_scenario_grid(points, sequential);
  const auto b = metrics::run_scenario_grid(points, parallel);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_FALSE(a[0].histograms.empty());
  EXPECT_EQ(a[0].histograms, b[0].histograms);
  EXPECT_FALSE(a[0].timeline.empty());
  EXPECT_EQ(a[0].timeline, b[0].timeline);
  // The edge-delay and hop-count instruments both saw traffic.
  EXPECT_GT(a[0].histograms.of(HistogramId::kEdgeDelayUs).count, 0u);
  EXPECT_GT(a[0].histograms.of(HistogramId::kHopCount).count, 0u);
}

}  // namespace
