// Tests for capacity-constrained (lossy) dissemination.
#include <gtest/gtest.h>

#include "core/group_session.h"
#include "core/middleware.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

struct LossyFixture {
  testing::SmallWorld world;
  SpanningTree tree;

  LossyFixture() : world(8, 3), tree(0) {
    tree.attach(1, 0);
    tree.attach(2, 1);
    tree.attach(3, 1);
    tree.mark_subscriber(2);
    tree.mark_subscriber(3);
  }
};

TEST(LossySession, NoLossWhenCapacitySuffices) {
  LossyFixture f;
  const GroupSession session(*f.world.population, f.tree);
  GroupSession::LossyOptions options;
  // A vanishing stream rate makes every relay's sustainable fan-out huge.
  options.stream_units = 1e-6;
  util::Rng rng(1);
  const auto result = session.disseminate_lossy(0, options, rng);
  EXPECT_EQ(result.subscribers_reached, 2u);
  EXPECT_EQ(result.copies_dropped, 0u);
  EXPECT_DOUBLE_EQ(result.delivery_ratio(), 1.0);
}

TEST(LossySession, TotalLossWhenStreamDwarfsCapacity) {
  LossyFixture f;
  const GroupSession session(*f.world.population, f.tree);
  GroupSession::LossyOptions options;
  options.stream_units = 1e12;  // nobody can forward anything
  util::Rng rng(2);
  const auto result = session.disseminate_lossy(0, options, rng);
  EXPECT_EQ(result.subscribers_reached, 0u);
  EXPECT_GT(result.copies_dropped, 0u);
  EXPECT_DOUBLE_EQ(result.delivery_ratio(), 0.0);
}

TEST(LossySession, DropCutsWholeSubtree) {
  // Chain 0 -> 1 -> 2 -> 3 with subscribers at 2 and 3.  If the copy on
  // edge (1,2) is dropped, 3 cannot be reached either.
  testing::SmallWorld world(8, 5);
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.attach(2, 1);
  tree.attach(3, 2);
  tree.mark_subscriber(2);
  tree.mark_subscriber(3);
  const GroupSession session(*world.population, tree);
  GroupSession::LossyOptions options;
  options.stream_units = 1e12;
  util::Rng rng(3);
  const auto result = session.disseminate_lossy(0, options, rng);
  // The very first copy (0 -> 1) is dropped: one drop, nothing reached,
  // and crucially no "partial" deliveries below the cut.
  EXPECT_EQ(result.subscribers_reached, 0u);
  EXPECT_EQ(result.copies_dropped, 1u);
}

TEST(LossySession, DeliveryRatioMatchesForwardProbabilityOnStar) {
  // A star rooted at a capacity-c peer with n children loses each child
  // independently with probability 1 - c/n.
  testing::SmallWorld world(64, 7);
  // Find a 10x-capacity peer to root the star at.
  PeerId root = overlay::kNoPeer;
  for (PeerId p = 0; p < 64; ++p) {
    if (world.population->info(p).capacity == 10.0) {
      root = p;
      break;
    }
  }
  ASSERT_NE(root, overlay::kNoPeer);
  SpanningTree tree(root);
  std::size_t children = 0;
  for (PeerId p = 0; p < 64 && children < 40; ++p) {
    if (p == root) continue;
    tree.attach(p, root);
    tree.mark_subscriber(p);
    ++children;
  }
  const GroupSession session(*world.population, tree);
  GroupSession::LossyOptions options;
  options.stream_units = 1.0;  // sustainable fan-out 10 of 40 -> p = 0.25
  util::Rng rng(11);
  double total_ratio = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    total_ratio += session.disseminate_lossy(root, options, rng)
                       .delivery_ratio() /
                   trials;
  }
  EXPECT_NEAR(total_ratio, 0.25, 0.03);
}

TEST(LossySession, GroupCastBeatsRandomOverlayOnDelivery) {
  auto delivery = [](OverlayKind kind) {
    MiddlewareConfig config;
    config.peer_count = 300;
    config.seed = 13;
    config.overlay = kind;
    GroupCastMiddleware middleware(config);
    auto group = middleware.establish_random_group(60);
    const auto session = middleware.session(group);
    util::Rng rng(17);
    GroupSession::LossyOptions options;
    options.stream_units = 1.0;
    double total = 0.0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      total += session.disseminate_lossy(group.advert.rendezvous, options,
                                         rng)
                   .delivery_ratio() /
               trials;
    }
    return total;
  };
  EXPECT_GT(delivery(OverlayKind::kGroupCast),
            delivery(OverlayKind::kRandomPowerLaw));
}

TEST(LossySession, CascadingRelayFailuresRepairCleanly) {
  // Two interior relays fail back to back; each repair must leave a
  // coherent tree with every orphaned subscriber re-attached before the
  // next failure lands.
  MiddlewareConfig config;
  config.peer_count = 300;
  config.seed = 13;
  GroupCastMiddleware middleware(config);
  auto group = middleware.establish_random_group(60);

  const auto pick_relay = [&](PeerId skip) {
    for (PeerId p = 0; p < config.peer_count; ++p) {
      if (p == group.advert.rendezvous || p == skip) continue;
      if (group.tree.contains(p) && !group.tree.children(p).empty()) {
        return p;
      }
    }
    return overlay::kNoPeer;
  };
  const PeerId first = pick_relay(overlay::kNoPeer);
  ASSERT_NE(first, overlay::kNoPeer);
  const auto report_a = middleware.repair_after_failure(group, first);
  EXPECT_GT(report_a.pruned_nodes, 0u);
  EXPECT_EQ(report_a.resubscribed, report_a.orphaned_subscribers);
  EXPECT_FALSE(group.tree.contains(first));

  const PeerId second = pick_relay(first);
  ASSERT_NE(second, overlay::kNoPeer);
  const auto report_b = middleware.repair_after_failure(group, second);
  EXPECT_EQ(report_b.resubscribed, report_b.orphaned_subscribers);
  EXPECT_FALSE(group.tree.contains(second));

  for (const auto s : group.tree.subscribers()) {
    EXPECT_TRUE(group.tree.contains(s)) << "subscriber " << s;
  }
}

TEST(LossySession, RepairedTreeStillDeliversLossless) {
  // After an interior-relay repair the dissemination path must be intact:
  // with effectively unlimited capacity every subscriber is reached.
  MiddlewareConfig config;
  config.peer_count = 300;
  config.seed = 29;
  GroupCastMiddleware middleware(config);
  auto group = middleware.establish_random_group(60);
  PeerId relay = overlay::kNoPeer;
  for (PeerId p = 0; p < config.peer_count; ++p) {
    if (p != group.advert.rendezvous && group.tree.contains(p) &&
        !group.tree.children(p).empty()) {
      relay = p;
      break;
    }
  }
  ASSERT_NE(relay, overlay::kNoPeer);
  middleware.repair_after_failure(group, relay);

  const auto session = middleware.session(group);
  GroupSession::LossyOptions options;
  options.stream_units = 1e-6;
  util::Rng rng(31);
  const auto result =
      session.disseminate_lossy(group.advert.rendezvous, options, rng);
  EXPECT_DOUBLE_EQ(result.delivery_ratio(), 1.0);
  EXPECT_EQ(result.copies_dropped, 0u);
}

TEST(LossySession, Preconditions) {
  LossyFixture f;
  const GroupSession session(*f.world.population, f.tree);
  util::Rng rng(1);
  GroupSession::LossyOptions bad;
  bad.stream_units = 0.0;
  EXPECT_THROW(session.disseminate_lossy(0, bad, rng), PreconditionError);
  EXPECT_THROW(session.disseminate_lossy(7, {}, rng), PreconditionError);
}

}  // namespace
}  // namespace groupcast::core
