// Tests for dynamic group membership at the middleware level: late joins,
// unsubscribes with relay-chain collapse, and repair after relay failure.
#include <gtest/gtest.h>

#include "core/middleware.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

MiddlewareConfig config_for(std::uint64_t seed) {
  MiddlewareConfig config;
  config.peer_count = 200;
  config.seed = seed;
  return config;
}

TEST(Membership, LateJoinAddsSubscriber) {
  GroupCastMiddleware middleware(config_for(3));
  auto group = middleware.establish_random_group(20);
  const auto before = group.tree.subscriber_count();
  // Find a peer not yet subscribed.
  for (PeerId p = 0; p < 200; ++p) {
    if (group.tree.is_subscriber(p)) continue;
    const auto outcome = middleware.add_subscriber(group, p);
    EXPECT_TRUE(outcome.success);
    EXPECT_TRUE(group.tree.is_subscriber(p));
    EXPECT_EQ(group.tree.subscriber_count(), before + 1);
    EXPECT_TRUE(group.tree.is_consistent());
    return;
  }
  FAIL() << "no unsubscribed peer found";
}

TEST(Membership, RemoveLeafCollapsesRelayChain) {
  GroupCastMiddleware middleware(config_for(5));
  auto group = middleware.establish_random_group(15);
  // Find a leaf subscriber with a pure-relay parent chain.
  for (const auto node : group.tree.nodes()) {
    if (!group.tree.is_subscriber(node)) continue;
    if (node == group.tree.root()) continue;
    if (!group.tree.children(node).empty()) continue;
    const auto node_count_before = group.tree.node_count();
    const auto pruned = middleware.remove_subscriber(group, node);
    EXPECT_GE(pruned, 1u);
    EXPECT_FALSE(group.tree.contains(node));
    EXPECT_EQ(group.tree.node_count(), node_count_before - pruned);
    EXPECT_TRUE(group.tree.is_consistent());
    return;
  }
  GTEST_SKIP() << "no leaf subscriber in this instance";
}

TEST(Membership, RemoveInteriorSubscriberKeepsRelay) {
  GroupCastMiddleware middleware(config_for(7));
  auto group = middleware.establish_random_group(40);
  for (const auto node : group.tree.nodes()) {
    if (!group.tree.is_subscriber(node)) continue;
    if (group.tree.children(node).empty()) continue;
    const auto pruned = middleware.remove_subscriber(group, node);
    EXPECT_EQ(pruned, 0u);
    EXPECT_TRUE(group.tree.contains(node));  // still relaying
    EXPECT_FALSE(group.tree.is_subscriber(node));
    return;
  }
  GTEST_SKIP() << "no interior subscriber in this instance";
}

TEST(Membership, RemoveRequiresSubscriber) {
  GroupCastMiddleware middleware(config_for(9));
  auto group = middleware.establish_random_group(10);
  for (const auto node : group.tree.nodes()) {
    if (!group.tree.is_subscriber(node)) {
      EXPECT_THROW(middleware.remove_subscriber(group, node),
                   PreconditionError);
      return;
    }
  }
  GTEST_SKIP() << "tree has no pure relay";
}

TEST(Membership, RepairAfterRelayFailureRestoresSubscribers) {
  GroupCastMiddleware middleware(config_for(11));
  auto group = middleware.establish_random_group(40);
  // Pick the relay with the largest subscriber subtree (excluding root).
  PeerId victim = overlay::kNoPeer;
  std::size_t victim_orphans = 0;
  for (const auto node : group.tree.nodes()) {
    if (node == group.tree.root()) continue;
    const auto subs = group.tree.subtree_subscribers(node).size();
    if (subs > victim_orphans) {
      victim_orphans = subs;
      victim = node;
    }
  }
  ASSERT_NE(victim, overlay::kNoPeer);
  const auto subscribers_before = group.tree.subscriber_count();
  const bool victim_subscribed = group.tree.is_subscriber(victim);

  const auto report = middleware.repair_after_failure(group, victim);
  EXPECT_GT(report.pruned_nodes, 0u);
  EXPECT_TRUE(group.tree.is_consistent());
  EXPECT_FALSE(group.tree.contains(victim));
  EXPECT_EQ(report.resubscribed, report.orphaned_subscribers);
  // Everyone except the crashed peer itself is back.
  EXPECT_EQ(group.tree.subscriber_count(),
            subscribers_before - (victim_subscribed ? 1 : 0));
  // The advertisement no longer names the corpse as anyone's parent.
  for (PeerId p = 0; p < 200; ++p) {
    EXPECT_NE(group.advert.parent[p],
              victim == p ? overlay::kNoPeer - 1 : victim);
  }
}

TEST(Membership, RepairRejectsRootFailure) {
  GroupCastMiddleware middleware(config_for(13));
  auto group = middleware.establish_random_group(10);
  EXPECT_THROW(middleware.repair_after_failure(group, group.tree.root()),
               PreconditionError);
}

TEST(Membership, DisseminationWorksAfterChurnedMembership) {
  GroupCastMiddleware middleware(config_for(17));
  auto group = middleware.establish_random_group(30);
  // Remove a third of the subscribers, add some new ones, crash a relay.
  std::vector<PeerId> current(group.tree.subscribers().begin(),
                              group.tree.subscribers().end());
  for (std::size_t i = 0; i < current.size(); i += 3) {
    if (current[i] != group.tree.root()) {
      middleware.remove_subscriber(group, current[i]);
    }
  }
  for (PeerId p = 0; p < 200 && group.tree.subscriber_count() < 40; p += 13) {
    if (!group.tree.is_subscriber(p)) middleware.add_subscriber(group, p);
  }
  for (const auto node : group.tree.nodes()) {
    if (node != group.tree.root() && !group.tree.children(node).empty()) {
      middleware.repair_after_failure(group, node);
      break;
    }
  }
  ASSERT_TRUE(group.tree.is_consistent());
  const auto session = middleware.session(group);
  const auto result = session.disseminate(group.tree.root());
  std::size_t expected = group.tree.subscriber_count();
  if (group.tree.is_subscriber(group.tree.root())) --expected;
  EXPECT_EQ(result.subscriber_delay_ms.size(), expected);
}

}  // namespace
}  // namespace groupcast::core
