// Tests for the metrics layer odds and ends: message-stat accounting,
// graph statistics, scenario dispersion, and the bench-scale knob.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/message.h"
#include "metrics/experiment.h"
#include "metrics/graph_stats.h"
#include "test_helpers.h"

namespace groupcast::metrics {
namespace {

using overlay::PeerId;

TEST(MessageStats, CountsAndAggregates) {
  core::MessageStats stats;
  stats.count(core::MessageKind::kAdvertisement, 5);
  stats.count(core::MessageKind::kRippleSearch, 2);
  stats.count(core::MessageKind::kSubscribeJoin);
  EXPECT_EQ(stats.advertisement_messages(), 5u);
  EXPECT_EQ(stats.subscription_messages(), 3u);
  EXPECT_EQ(stats.total(), 8u);
}

TEST(MessageStats, PlusEqualsMerges) {
  core::MessageStats a, b;
  a.count(core::MessageKind::kPayload, 3);
  b.count(core::MessageKind::kPayload, 4);
  b.count(core::MessageKind::kSubscribeAck, 1);
  a += b;
  EXPECT_EQ(a.of(core::MessageKind::kPayload), 7u);
  EXPECT_EQ(a.of(core::MessageKind::kSubscribeAck), 1u);
  EXPECT_EQ(a.total(), 8u);
}

TEST(GraphStats, DegreeDistributionCoversAllPeers) {
  overlay::OverlayGraph graph(5);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  const auto dist = degree_distribution(graph);
  EXPECT_EQ(dist.total(), 5u);
  const auto items = dist.items();
  // Degrees: 0:1, 1:2, 2:1, others 0 -> counts {0:2, 1:2, 2:1}.
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(items[1], (std::pair<std::size_t, std::size_t>{1, 2}));
  EXPECT_EQ(items[2], (std::pair<std::size_t, std::size_t>{2, 1}));
}

TEST(GraphStats, PerPeerNeighborDistanceMatchesManualAverage) {
  testing::SmallWorld world(8, 5);
  overlay::OverlayGraph graph(8);
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  const auto per_peer = per_peer_neighbor_distance(*world.population, graph);
  const double expected = (world.population->latency_ms(0, 1) +
                           world.population->latency_ms(0, 2)) /
                          2.0;
  EXPECT_NEAR(per_peer[0], expected, 1e-9);
  EXPECT_LT(per_peer[5], 0.0);  // isolated peers are marked -1
  const auto summary = neighbor_distance_summary(*world.population, graph);
  EXPECT_EQ(summary.count(), 3u);  // peers 0, 1, 2 have neighbours
}

TEST(Experiment, DispersionZeroForSingleTopology) {
  ScenarioConfig config;
  config.peer_count = 120;
  config.groups = 2;
  config.seed = 5;
  const auto r = run_scenario_averaged(config, 1);
  EXPECT_DOUBLE_EQ(r.delay_penalty_stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.overload_index_stddev, 0.0);
}

TEST(Experiment, DispersionPopulatedAcrossTopologies) {
  ScenarioConfig config;
  config.peer_count = 120;
  config.groups = 2;
  config.seed = 5;
  const auto r = run_scenario_averaged(config, 3);
  // Different topologies virtually never coincide exactly.
  EXPECT_GT(r.delay_penalty_stddev, 0.0);
  EXPECT_GE(r.link_stress_stddev, 0.0);
}

TEST(Experiment, BenchScaleReadsEnvironment) {
  unsetenv("GROUPCAST_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  setenv("GROUPCAST_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 2.5);
  setenv("GROUPCAST_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  setenv("GROUPCAST_BENCH_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  unsetenv("GROUPCAST_BENCH_SCALE");
}

TEST(Multicast, UsesLinkReportsTreeMembership) {
  const auto topo = testing::line_topology(5);
  const net::IpRouting routing(topo);
  const net::IpMulticastTree tree(routing, 0, {2});
  // Links 0-1 and 1-2 are on the tree; 2-3 and 3-4 are not.
  std::size_t used = 0;
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    if (tree.uses_link(l)) ++used;
  }
  EXPECT_EQ(used, 2u);
}

}  // namespace
}  // namespace groupcast::metrics
