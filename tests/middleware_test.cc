// Integration tests: the GroupCastMiddleware façade end to end, plus the
// experiment harness in metrics/.
#include <gtest/gtest.h>

#include <memory>

#include "core/middleware.h"
#include "metrics/experiment.h"
#include "metrics/graph_stats.h"
#include "trace/counters.h"
#include "trace/sink.h"
#include "trace/trace.h"
#include "util/require.h"
#include "util/stats.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

MiddlewareConfig small_config(OverlayKind kind, std::uint64_t seed = 5) {
  MiddlewareConfig config;
  config.peer_count = 150;
  config.seed = seed;
  config.overlay = kind;
  return config;
}

TEST(Middleware, BuildsConnectedGroupCastOverlay) {
  GroupCastMiddleware middleware(small_config(OverlayKind::kGroupCast));
  const auto report = middleware.graph().connectivity();
  EXPECT_TRUE(report.connected);
  EXPECT_EQ(middleware.population().size(), 150u);
  EXPECT_GT(middleware.graph().edge_count(), 150u);
}

TEST(Middleware, BuildsConnectedPlodOverlay) {
  GroupCastMiddleware middleware(small_config(OverlayKind::kRandomPowerLaw));
  EXPECT_TRUE(middleware.graph().connectivity().connected);
}

TEST(Middleware, RendezvousIsConnectedAndCapable) {
  GroupCastMiddleware middleware(small_config(OverlayKind::kGroupCast));
  util::Summary capacities;
  for (int trial = 0; trial < 20; ++trial) {
    const auto rp = middleware.pick_rendezvous();
    EXPECT_GT(middleware.graph().degree(rp), 0u);
    capacities.add(middleware.population().info(rp).capacity);
  }
  // The walk seeks capacity: the picked peers should be far above the
  // population median (10x).
  EXPECT_GT(capacities.median(), 10.0);
}

TEST(Middleware, EstablishGroupInvariants) {
  GroupCastMiddleware middleware(small_config(OverlayKind::kGroupCast));
  std::vector<PeerId> subscribers{3, 17, 42, 99, 140};
  const auto rendezvous = middleware.pick_rendezvous();
  auto group = middleware.establish_group(rendezvous, subscribers);

  EXPECT_EQ(group.advert.rendezvous, rendezvous);
  EXPECT_TRUE(group.tree.is_consistent());
  EXPECT_EQ(group.tree.root(), rendezvous);
  EXPECT_EQ(group.report.outcomes.size(), subscribers.size());
  // Every successful subscriber is a tree subscriber.
  for (const auto& outcome : group.report.outcomes) {
    if (outcome.success) {
      EXPECT_TRUE(group.tree.is_subscriber(outcome.subscriber));
    }
  }
  // Message statistics cover the advertisement.
  EXPECT_EQ(group.stats.advertisement_messages(), group.advert.messages);
}

TEST(Middleware, SessionDisseminatesToSubscribers) {
  GroupCastMiddleware middleware(small_config(OverlayKind::kGroupCast));
  auto group = middleware.establish_random_group(30);
  ASSERT_GT(group.tree.subscriber_count(), 0u);
  const auto session = middleware.session(group);
  const auto result = session.disseminate(group.advert.rendezvous);
  EXPECT_GT(result.payload_messages, 0u);
  EXPECT_GT(result.average_delay_ms, 0.0);
  // All subscribers (minus the source itself) got the payload.
  std::size_t expected = group.tree.subscriber_count();
  if (group.tree.is_subscriber(group.advert.rendezvous)) --expected;
  EXPECT_EQ(result.subscriber_delay_ms.size(), expected);
}

TEST(Middleware, DeterministicForSameSeed) {
  GroupCastMiddleware a(small_config(OverlayKind::kGroupCast, 77));
  GroupCastMiddleware b(small_config(OverlayKind::kGroupCast, 77));
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
  auto group_a = a.establish_random_group(20);
  auto group_b = b.establish_random_group(20);
  EXPECT_EQ(group_a.advert.rendezvous, group_b.advert.rendezvous);
  EXPECT_EQ(group_a.advert.messages, group_b.advert.messages);
  EXPECT_EQ(group_a.tree.node_count(), group_b.tree.node_count());
}

TEST(Middleware, DifferentSeedsDiffer) {
  GroupCastMiddleware a(small_config(OverlayKind::kGroupCast, 1));
  GroupCastMiddleware b(small_config(OverlayKind::kGroupCast, 2));
  // Edge counts could rarely coincide, so compare degree sequences.
  const auto da = metrics::degree_distribution(a.graph()).items();
  const auto db = metrics::degree_distribution(b.graph()).items();
  EXPECT_NE(da, db);
}

TEST(Middleware, GroupCastNeighborsCloserThanPlod) {
  GroupCastMiddleware gc(small_config(OverlayKind::kGroupCast, 11));
  GroupCastMiddleware pl(small_config(OverlayKind::kRandomPowerLaw, 11));
  const auto gc_dist =
      metrics::neighbor_distance_summary(gc.population(), gc.graph());
  const auto pl_dist =
      metrics::neighbor_distance_summary(pl.population(), pl.graph());
  EXPECT_LT(gc_dist.mean(), pl_dist.mean());
}

TEST(Middleware, RejectsDegenerateConfigs) {
  MiddlewareConfig config;
  config.peer_count = 1;
  EXPECT_THROW(GroupCastMiddleware{config}, PreconditionError);
}

// ---------------------------------------------------------------- harness

TEST(Experiment, EffectiveGroupSizeDefaults) {
  metrics::ScenarioConfig config;
  config.peer_count = 1000;
  EXPECT_EQ(config.effective_group_size(), 100u);
  config.peer_count = 50;
  EXPECT_EQ(config.effective_group_size(), 16u);
  config.group_size = 30;
  EXPECT_EQ(config.effective_group_size(), 30u);
  config.group_size = 500;
  EXPECT_EQ(config.effective_group_size(), 50u);  // capped at peers
}

TEST(Experiment, RunScenarioPopulatesAllFields) {
  metrics::ScenarioConfig config;
  config.peer_count = 150;
  config.groups = 2;
  config.seed = 9;
  const auto result = metrics::run_scenario(config);
  EXPECT_GT(result.advertisement_messages, 0.0);
  EXPECT_GT(result.receiving_rate, 0.0);
  EXPECT_GT(result.subscription_success_rate, 0.5);
  EXPECT_GT(result.lookup_latency_ms, 0.0);
  EXPECT_GE(result.delay_penalty, 1.0);
  EXPECT_GE(result.link_stress, 1.0);
  EXPECT_GT(result.node_stress, 0.0);
  EXPECT_GE(result.overload_index, 0.0);
  EXPECT_GT(result.avg_tree_nodes, 0.0);
}

// Everything observable about one deployment + group-establishment run:
// used to check that forking a DeploymentSnapshot is bit-identical to
// constructing the middleware from scratch, instrumentation included.
struct DeploymentOutcome {
  std::size_t edges = 0;
  std::size_t advert_messages = 0;
  std::vector<PeerId> advert_parent;
  std::size_t subscribers = 0;
  trace::CounterSnapshot counters;
  std::vector<trace::TraceEvent> events;
};

TEST(Middleware, DeploymentSnapshotForkMatchesFreshConstruction) {
  const auto config = small_config(OverlayKind::kGroupCast, 11);

  // Builds a middleware (fresh when `snapshot` is null, forked otherwise),
  // establishes a group, and captures results + counters + trace events
  // under run-private instrumentation.
  const auto run = [&](std::shared_ptr<const DeploymentSnapshot> snapshot) {
    trace::CounterRegistry registry;
    registry.enable(config.peer_count);
    trace::ScopedCounterRegistry counter_guard(registry);
    trace::RingBufferSink ring(1 << 16);
    trace::tracer().set_sink(&ring);
    DeploymentOutcome out;
    {
      const auto middleware =
          snapshot ? std::make_unique<GroupCastMiddleware>(snapshot)
                   : std::make_unique<GroupCastMiddleware>(config);
      out.edges = middleware->graph().edge_count();
      auto group = middleware->establish_random_group(25);
      out.advert_messages = group.advert.messages;
      out.advert_parent = group.advert.parent;
      out.subscribers = group.tree.subscriber_count();
    }
    trace::tracer().set_sink(nullptr);
    out.counters = registry.snapshot();
    out.events = ring.events();
    EXPECT_EQ(ring.dropped(), 0u);
    return out;
  };

  const auto fresh = run(nullptr);
  const auto snapshot = GroupCastMiddleware::make_snapshot(config);
  // Two forks off one snapshot: forking must not consume snapshot state.
  for (int i = 0; i < 2; ++i) {
    const auto fork = run(snapshot);
    EXPECT_EQ(fork.edges, fresh.edges);
    EXPECT_EQ(fork.advert_messages, fresh.advert_messages);
    EXPECT_EQ(fork.advert_parent, fresh.advert_parent);
    EXPECT_EQ(fork.subscribers, fresh.subscribers);
    // Construction counters are merged from the snapshot and construction
    // trace events are replayed, so the full instrumentation record of a
    // forked run equals a fresh run's.
    EXPECT_EQ(fork.counters, fresh.counters);
    EXPECT_EQ(fork.events, fresh.events);
  }
}

TEST(Experiment, AveragingIsDeterministicAndWithinRange) {
  metrics::ScenarioConfig config;
  config.peer_count = 120;
  config.groups = 2;
  config.seed = 3;
  const auto a = metrics::run_scenario_averaged(config, 2);
  const auto b = metrics::run_scenario_averaged(config, 2);
  EXPECT_DOUBLE_EQ(a.delay_penalty, b.delay_penalty);
  EXPECT_DOUBLE_EQ(a.advertisement_messages, b.advertisement_messages);
}

}  // namespace
}  // namespace groupcast::core
