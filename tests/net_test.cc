// Tests for the IP underlay: topology builder/generator, all-pairs
// routing (validated against brute-force Floyd–Warshall on random graphs),
// and the IP-multicast baseline.
#include <gtest/gtest.h>

#include <limits>

#include "net/multicast.h"
#include "net/routing.h"
#include "net/topology.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::net {
namespace {

TEST(TopologyBuilder, RejectsBadLinks) {
  UnderlayTopology::Builder builder;
  const auto a = builder.add_router(RouterKind::kTransit, 0);
  const auto b = builder.add_router(RouterKind::kStub, 0);
  EXPECT_THROW(builder.add_link(a, a, 1.0), PreconditionError);   // self loop
  EXPECT_THROW(builder.add_link(a, b, 0.0), PreconditionError);   // zero lat
  EXPECT_THROW(builder.add_link(a, 99, 1.0), PreconditionError);  // range
  builder.add_link(a, b, 1.0);
  EXPECT_THROW(builder.add_link(b, a, 2.0), PreconditionError);   // duplicate
}

TEST(TopologyBuilder, RejectsDisconnectedGraph) {
  UnderlayTopology::Builder builder;
  builder.add_router(RouterKind::kStub, 0);
  builder.add_router(RouterKind::kStub, 1);
  EXPECT_THROW(std::move(builder).build(), PreconditionError);
}

TEST(TopologyBuilder, AdjacencyIsSymmetric) {
  const auto topo = testing::line_topology(4);
  for (RouterId r = 0; r < 4; ++r) {
    for (const auto& [link, nbr] : topo.neighbors(r)) {
      bool back = false;
      for (const auto& [l2, n2] : topo.neighbors(nbr)) {
        if (n2 == r && l2 == link) back = true;
      }
      EXPECT_TRUE(back) << "link " << link << " not symmetric";
    }
  }
}

TEST(TransitStub, GeneratesExpectedCounts) {
  TransitStubConfig config;
  config.transit_domains = 3;
  config.routers_per_transit_domain = 2;
  config.stub_domains_per_transit_router = 2;
  config.routers_per_stub_domain = 5;
  util::Rng rng(11);
  const auto topo = generate_transit_stub(config, rng);
  EXPECT_EQ(topo.router_count(), config.total_routers());
  std::size_t transit = 0, stub = 0;
  for (RouterId r = 0; r < topo.router_count(); ++r) {
    (topo.router(r).kind == RouterKind::kTransit ? transit : stub) += 1;
  }
  EXPECT_EQ(transit, 6u);
  EXPECT_EQ(stub, 60u);
  EXPECT_EQ(topo.stub_routers().size(), 60u);
}

TEST(TransitStub, AlwaysConnectedAcrossSeeds) {
  TransitStubConfig config;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const auto topo = generate_transit_stub(config, rng);
    EXPECT_TRUE(topo.is_connected()) << "seed " << seed;
  }
}

TEST(TransitStub, LinkLatenciesWithinConfiguredRanges) {
  TransitStubConfig config;
  util::Rng rng(13);
  const auto topo = generate_transit_stub(config, rng);
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(l);
    const auto ka = topo.router(link.a).kind;
    const auto kb = topo.router(link.b).kind;
    if (ka == RouterKind::kTransit && kb == RouterKind::kTransit) {
      // Same transit domain -> intra range; different -> long-haul range.
      if (topo.router(link.a).domain == topo.router(link.b).domain) {
        EXPECT_GE(link.latency_ms, config.intra_transit_min_ms);
        EXPECT_LE(link.latency_ms, config.intra_transit_max_ms);
      } else {
        EXPECT_GE(link.latency_ms, config.transit_transit_min_ms);
        EXPECT_LE(link.latency_ms, config.transit_transit_max_ms);
      }
    } else if (ka == RouterKind::kStub && kb == RouterKind::kStub) {
      EXPECT_GE(link.latency_ms, config.intra_stub_min_ms);
      EXPECT_LE(link.latency_ms, config.intra_stub_max_ms);
    } else {
      EXPECT_GE(link.latency_ms, config.transit_stub_min_ms);
      EXPECT_LE(link.latency_ms, config.transit_stub_max_ms);
    }
  }
}

TEST(ScaleConfig, ScalesStubTierWithPeerCount) {
  const auto small = scale_config_for_peers(500);
  const auto large = scale_config_for_peers(32000);
  EXPECT_GT(large.total_routers(), small.total_routers());
  // Roughly one stub router per 24 peers at the large end.
  const auto stubs = large.total_routers() -
                     large.transit_domains * large.routers_per_transit_domain;
  EXPECT_GE(stubs, 32000u / 24u);
}

TEST(Routing, LineTopologyDistancesExact) {
  const auto topo = testing::line_topology(6);
  const IpRouting routing(topo);
  for (RouterId a = 0; a < 6; ++a) {
    for (RouterId b = 0; b < 6; ++b) {
      EXPECT_DOUBLE_EQ(routing.distance_ms(a, b),
                       std::abs(static_cast<int>(a) - static_cast<int>(b)));
    }
  }
}

TEST(Routing, PathEndpointsAndContiguity) {
  const auto topo = testing::line_topology(5);
  const IpRouting routing(topo);
  const auto path = routing.path(0, 4);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 4u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(path[i + 1], path[i] + 1);
  }
  EXPECT_EQ(routing.hop_count(0, 4), 4u);
  EXPECT_EQ(routing.hop_count(2, 2), 0u);
}

TEST(Routing, DistanceMatrixExactlySymmetric) {
  // Shortest-path distance is symmetric on an undirected underlay, and
  // IpRouting promises it *exactly*: dist_ is double and symmetrized after
  // the per-source Dijkstra passes, so equal-cost tie-breaks and float
  // rounding cannot leave distance_ms(a, b) != distance_ms(b, a).
  for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    WaxmanConfig config;
    config.routers = 120;
    util::Rng rng(seed);
    const auto topo = generate_waxman(config, rng);
    const IpRouting routing(topo);
    for (RouterId a = 0; a < topo.router_count(); ++a) {
      for (RouterId b = a + 1; b < topo.router_count(); ++b) {
        EXPECT_EQ(routing.distance_ms(a, b), routing.distance_ms(b, a))
            << "seed=" << seed << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Routing, NextHopMovesTowardsDestination) {
  testing::SmallWorld world(4, 3);
  const auto& routing = *world.routing;
  const auto n = world.underlay->router_count();
  for (RouterId a = 0; a < n; a += 7) {
    for (RouterId b = 0; b < n; b += 5) {
      if (a == b) continue;
      const auto hop = routing.next_hop(a, b);
      // Moving to the next hop strictly reduces the remaining distance.
      EXPECT_LT(routing.distance_ms(hop, b), routing.distance_ms(a, b));
    }
  }
}

/// Brute-force Floyd–Warshall for validation.
std::vector<std::vector<double>> floyd_warshall(const UnderlayTopology& topo) {
  const std::size_t n = topo.router_count();
  std::vector<std::vector<double>> d(
      n, std::vector<double>(n, std::numeric_limits<double>::infinity()));
  for (std::size_t i = 0; i < n; ++i) d[i][i] = 0.0;
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(l);
    d[link.a][link.b] = std::min(d[link.a][link.b], link.latency_ms);
    d[link.b][link.a] = std::min(d[link.b][link.a], link.latency_ms);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

class RoutingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingPropertyTest, DijkstraMatchesFloydWarshall) {
  TransitStubConfig config;
  config.transit_domains = 2;
  config.routers_per_transit_domain = 2;
  config.stub_domains_per_transit_router = 2;
  config.routers_per_stub_domain = 4;
  util::Rng rng(GetParam());
  const auto topo = generate_transit_stub(config, rng);
  const IpRouting routing(topo);
  const auto reference = floyd_warshall(topo);
  for (RouterId a = 0; a < topo.router_count(); ++a) {
    for (RouterId b = 0; b < topo.router_count(); ++b) {
      EXPECT_NEAR(routing.distance_ms(a, b), reference[a][b], 1e-3)
          << a << "->" << b;
    }
  }
}

TEST_P(RoutingPropertyTest, PathLatencySumsEqualDistance) {
  TransitStubConfig config;
  config.transit_domains = 2;
  config.routers_per_transit_domain = 2;
  config.stub_domains_per_transit_router = 2;
  config.routers_per_stub_domain = 3;
  util::Rng rng(GetParam() + 1000);
  const auto topo = generate_transit_stub(config, rng);
  const IpRouting routing(topo);
  util::Rng picker(GetParam());
  for (int s = 0; s < 40; ++s) {
    const auto a = static_cast<RouterId>(
        picker.uniform_index(topo.router_count()));
    const auto b = static_cast<RouterId>(
        picker.uniform_index(topo.router_count()));
    double sum = 0.0;
    routing.for_each_path_link(
        a, b, [&](LinkId l) { sum += topo.link(l).latency_ms; });
    EXPECT_NEAR(sum, routing.distance_ms(a, b), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Multicast, DelayEqualsUnicastShortestPath) {
  testing::SmallWorld world(4, 7);
  const auto& routing = *world.routing;
  const std::vector<RouterId> receivers{3, 9, 15, 21};
  const IpMulticastTree tree(routing, 0, receivers);
  for (const auto r : receivers) {
    EXPECT_DOUBLE_EQ(tree.delay_ms_to(r), routing.distance_ms(0, r));
  }
}

TEST(Multicast, LinkCountAtMostSumOfPathsAndAtLeastLongestPath) {
  testing::SmallWorld world(4, 9);
  const auto& routing = *world.routing;
  std::vector<RouterId> receivers;
  for (RouterId r = 1; r < 20; r += 3) receivers.push_back(r);
  const IpMulticastTree tree(routing, 0, receivers);
  std::size_t sum = 0, longest = 0;
  for (const auto r : receivers) {
    const auto hops = routing.hop_count(0, r);
    sum += hops;
    longest = std::max(longest, hops);
  }
  EXPECT_LE(tree.link_message_count(), sum);   // sharing can only reduce
  EXPECT_GE(tree.link_message_count(), longest);
}

TEST(Multicast, DuplicateReceiversCountOnceInLinks) {
  const auto topo = testing::line_topology(5);
  const IpRouting routing(topo);
  const IpMulticastTree once(routing, 0, {4});
  const IpMulticastTree twice(routing, 0, {4, 4, 4});
  EXPECT_EQ(once.link_message_count(), twice.link_message_count());
  // Average delay counts per receiver entry (per peer).
  EXPECT_DOUBLE_EQ(twice.average_delay_ms(), once.average_delay_ms());
}

TEST(Multicast, SourceOnlyReceiverYieldsZeroLinks) {
  const auto topo = testing::line_topology(3);
  const IpRouting routing(topo);
  const IpMulticastTree tree(routing, 1, {1});
  EXPECT_EQ(tree.link_message_count(), 0u);
  EXPECT_DOUBLE_EQ(tree.average_delay_ms(), 0.0);
}

TEST(Multicast, LineTopologyExactSharing) {
  // Receivers 2, 3, 4 on a line share the prefix: links = 4 (1 per hop of
  // the longest path), not 2+3+4.
  const auto topo = testing::line_topology(5);
  const IpRouting routing(topo);
  const IpMulticastTree tree(routing, 0, {2, 3, 4});
  EXPECT_EQ(tree.link_message_count(), 4u);
}

}  // namespace
}  // namespace groupcast::net
