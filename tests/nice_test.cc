// Tests for the NICE-style hierarchical cluster baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/nice.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::baselines {
namespace {

using overlay::PeerId;

std::vector<PeerId> members_range(PeerId from, PeerId to, PeerId step = 1) {
  std::vector<PeerId> out;
  for (PeerId p = from; p < to; p += step) out.push_back(p);
  return out;
}

TEST(Nice, TreeSpansAllMembers) {
  testing::SmallWorld world(96, 3);
  util::Rng rng(1);
  const auto members = members_range(0, 96, 2);
  const auto result =
      build_nice_tree(*world.population, members, NiceOptions{}, rng);
  EXPECT_TRUE(result.tree.is_consistent());
  EXPECT_EQ(result.tree.node_count(), members.size());
  for (const auto m : members) {
    EXPECT_TRUE(result.tree.contains(m));
    EXPECT_TRUE(result.tree.is_subscriber(m));
  }
  EXPECT_EQ(result.tree.root(), result.root);
}

TEST(Nice, DepthIsLogarithmic) {
  testing::SmallWorld world(128, 5);
  util::Rng rng(2);
  const auto members = members_range(0, 128);
  NiceOptions options;
  options.cluster_degree = 3;
  const auto result =
      build_nice_tree(*world.population, members, options, rng);
  // Clusters hold ~2k members, so depth ~ log_{2k}(n) plus slack.
  const double expected =
      std::log(128.0) / std::log(2.0 * options.cluster_degree);
  EXPECT_LE(result.tree.max_depth(),
            static_cast<std::size_t>(std::ceil(expected)) + 2);
  EXPECT_GE(result.layers, 2u);
}

TEST(Nice, FanoutBoundedByClusterSize) {
  testing::SmallWorld world(96, 7);
  util::Rng rng(3);
  NiceOptions options;
  options.cluster_degree = 3;
  const auto result = build_nice_tree(*world.population,
                                      members_range(0, 96), options, rng);
  // A leader serves at most one cluster per layer it leads; with merges a
  // cluster can reach ~4k members.  Fan-out must stay O(k · layers).
  for (const auto node : result.tree.nodes()) {
    EXPECT_LE(result.tree.children(node).size(),
              4 * options.cluster_degree * result.layers);
  }
}

TEST(Nice, SingleAndTinyGroups) {
  testing::SmallWorld world(16, 9);
  util::Rng rng(4);
  const auto solo =
      build_nice_tree(*world.population, {5}, NiceOptions{}, rng);
  EXPECT_EQ(solo.tree.node_count(), 1u);
  EXPECT_EQ(solo.root, 5u);
  EXPECT_EQ(solo.layers, 0u);

  const auto pair =
      build_nice_tree(*world.population, {3, 9}, NiceOptions{}, rng);
  EXPECT_EQ(pair.tree.node_count(), 2u);
  EXPECT_TRUE(pair.tree.is_consistent());
}

TEST(Nice, DuplicateMembersDeduplicated) {
  testing::SmallWorld world(32, 11);
  util::Rng rng(5);
  const auto result = build_nice_tree(*world.population, {1, 2, 1, 2, 3},
                                      NiceOptions{}, rng);
  EXPECT_EQ(result.tree.node_count(), 3u);
}

TEST(Nice, LeadersAreLatencyCentres) {
  // The root must not be a latency outlier: its mean distance to members
  // should not exceed the population mean among members.
  testing::SmallWorld world(96, 13);
  util::Rng rng(6);
  const auto members = members_range(0, 96, 3);
  const auto result =
      build_nice_tree(*world.population, members, NiceOptions{}, rng);
  auto mean_dist = [&](PeerId from) {
    double total = 0;
    for (const auto m : members) total += world.population->latency_ms(from, m);
    return total / static_cast<double>(members.size());
  };
  double population_mean = 0;
  for (const auto m : members) population_mean += mean_dist(m);
  population_mean /= static_cast<double>(members.size());
  EXPECT_LE(mean_dist(result.root), population_mean * 1.25);
}

TEST(Nice, RefreshCostQuadraticInClusterNotGroup) {
  testing::SmallWorld world(128, 17);
  util::Rng rng(7);
  const auto members = members_range(0, 128);
  NiceOptions options;
  options.cluster_degree = 3;
  const auto result =
      build_nice_tree(*world.population, members, options, rng);
  // Far below the all-pairs n*(n-1) a Narada-style full mesh would cost.
  EXPECT_LT(result.refresh_messages_per_round, 128u * 127u / 4u);
  EXPECT_GT(result.refresh_messages_per_round, 0u);
}

TEST(Nice, RejectsDegenerateOptions) {
  testing::SmallWorld world(16, 19);
  util::Rng rng(8);
  NiceOptions bad;
  bad.cluster_degree = 1;
  EXPECT_THROW(build_nice_tree(*world.population, {1, 2, 3}, bad, rng),
               PreconditionError);
  EXPECT_THROW(build_nice_tree(*world.population, {}, NiceOptions{}, rng),
               PreconditionError);
}

}  // namespace
}  // namespace groupcast::baselines
