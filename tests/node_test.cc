// Tests for the deployable middleware runtime: Transport + GroupCastNode.
// A whole population of nodes is stood up and exercised purely through
// message passing on the simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "core/node.h"
#include "overlay/bootstrap.h"
#include "overlay/host_cache.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

// ---------------------------------------------------------------- transport

TEST(Transport, DeliversAfterLatency) {
  testing::SmallWorld world(8, 3);
  sim::Simulator simulator;
  util::Rng rng(1);
  Transport transport(simulator, *world.population, TransportOptions{}, rng);
  sim::SimTime delivered_at = sim::SimTime::zero();
  transport.register_node(1, [&](const Envelope& e) {
    EXPECT_EQ(e.from, 0u);
    EXPECT_EQ(e.to, 1u);
    delivered_at = simulator.now();
  });
  transport.send(0, 1, JoinAckMsg{7});
  simulator.run();
  EXPECT_NEAR(delivered_at.as_millis(), world.population->latency_ms(0, 1),
              0.01);
  EXPECT_EQ(transport.messages_sent(), 1u);
  EXPECT_EQ(transport.messages_lost(), 0u);
}

TEST(Transport, DropsToUnregisteredReceiver) {
  testing::SmallWorld world(8, 5);
  sim::Simulator simulator;
  util::Rng rng(2);
  Transport transport(simulator, *world.population, TransportOptions{}, rng);
  transport.send(0, 1, JoinAckMsg{1});  // nobody listening: no crash
  EXPECT_NO_THROW(simulator.run());
}

TEST(Transport, LossProbabilityDropsShare) {
  testing::SmallWorld world(8, 7);
  sim::Simulator simulator;
  util::Rng rng(3);
  TransportOptions options;
  options.loss_probability = 0.5;
  Transport transport(simulator, *world.population, options, rng);
  int received = 0;
  transport.register_node(1, [&](const Envelope&) { ++received; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) transport.send(0, 1, JoinAckMsg{1});
  simulator.run();
  EXPECT_NEAR(received / static_cast<double>(n), 0.5, 0.05);
  EXPECT_EQ(transport.messages_lost(), n - static_cast<std::size_t>(received));
}

TEST(Transport, RejectsDoubleRegistrationAndLoopback) {
  testing::SmallWorld world(8, 9);
  sim::Simulator simulator;
  util::Rng rng(4);
  Transport transport(simulator, *world.population, TransportOptions{}, rng);
  transport.register_node(0, [](const Envelope&) {});
  EXPECT_THROW(transport.register_node(0, [](const Envelope&) {}),
               PreconditionError);
  EXPECT_THROW(transport.send(0, 0, JoinAckMsg{1}), PreconditionError);
}

TEST(Transport, StatsClassifyMessageKinds) {
  testing::SmallWorld world(8, 11);
  sim::Simulator simulator;
  util::Rng rng(5);
  Transport transport(simulator, *world.population, TransportOptions{}, rng);
  transport.send(0, 1, AdvertiseMsg{});
  transport.send(0, 1, RippleQueryMsg{});
  transport.send(0, 1, RippleHitMsg{});
  transport.send(0, 1, JoinMsg{});
  transport.send(0, 1, JoinAckMsg{});
  transport.send(0, 1, DataMsg{});
  transport.send(0, 1, LeaveMsg{});
  EXPECT_EQ(transport.stats().of(MessageKind::kAdvertisement), 1u);
  EXPECT_EQ(transport.stats().of(MessageKind::kRippleSearch), 1u);
  EXPECT_EQ(transport.stats().of(MessageKind::kRippleResponse), 1u);
  EXPECT_EQ(transport.stats().of(MessageKind::kSubscribeJoin), 2u);
  EXPECT_EQ(transport.stats().of(MessageKind::kSubscribeAck), 1u);
  EXPECT_EQ(transport.stats().of(MessageKind::kPayload), 1u);
  EXPECT_EQ(transport.stats().total(), 7u);
}

// ------------------------------------------------------------ node fixture

TransportOptions lossy_transport(double loss) {
  TransportOptions options;
  options.loss_probability = loss;
  return options;
}

/// A full node deployment over a joined GroupCast overlay.
struct NodeDeployment {
  testing::SmallWorld world;
  overlay::OverlayGraph graph;
  sim::Simulator simulator;
  Transport transport;
  std::vector<std::unique_ptr<GroupCastNode>> nodes;

  explicit NodeDeployment(std::size_t peers = 64, std::uint64_t seed = 21,
                          double loss = 0.0, NodeOptions options = {})
      : world(peers, seed),
        graph(peers),
        transport(simulator, *world.population,
                  lossy_transport(loss), world.rng) {
    overlay::HostCacheServer cache(*world.population,
                                   overlay::HostCacheOptions{}, world.rng);
    overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                          overlay::BootstrapOptions{},
                                          world.rng);
    for (PeerId p = 0; p < peers; ++p) bootstrap.join(p);
    for (PeerId p = 0; p < peers; ++p) {
      nodes.push_back(std::make_unique<GroupCastNode>(
          p, transport, graph, options, world.rng));
      nodes.back()->start();
    }
  }
};

TEST(Node, CreateGroupSpreadsAdvertisement) {
  NodeDeployment d(48, 23);
  d.nodes[0]->create_group(1);
  d.simulator.run();
  std::size_t holders = 0;
  for (const auto& node : d.nodes) {
    if (node->has_advertisement(1)) ++holders;
  }
  EXPECT_GT(holders, 24u);  // most of a 48-peer overlay
}

TEST(Node, SubscribeViaReversePathBuildsConsistentTree) {
  NodeDeployment d(48, 29);
  d.nodes[0]->create_group(1);
  d.simulator.run();
  std::map<GroupId, int> results;
  for (const PeerId s : {5u, 15u, 25u, 35u}) {
    d.nodes[s]->on_subscribe_result(
        [&results, s](GroupId, bool ok) { results[s] += ok ? 1 : 0; });
    d.nodes[s]->subscribe(1);
  }
  d.simulator.run();
  for (const PeerId s : {5u, 15u, 25u, 35u}) {
    EXPECT_TRUE(d.nodes[s]->is_subscribed(1)) << "peer " << s;
    // Parent/child relationships are mutual.
    const auto parent = d.nodes[s]->tree_parent(1);
    if (parent != s) {
      const auto kids = d.nodes[parent]->tree_children(1);
      EXPECT_NE(std::find(kids.begin(), kids.end(), s), kids.end());
    }
  }
}

TEST(Node, PublishReachesAllSubscribersExactlyOnce) {
  NodeDeployment d(64, 31);
  d.nodes[0]->create_group(9);
  d.simulator.run();
  std::vector<PeerId> subscribers{4, 9, 16, 25, 36, 49};
  for (const auto s : subscribers) d.nodes[s]->subscribe(9);
  d.simulator.run();
  std::map<PeerId, int> deliveries;
  for (const auto s : subscribers) {
    d.nodes[s]->on_data([&deliveries, s](GroupId, std::uint64_t id, PeerId) {
      EXPECT_EQ(id, 777u);
      ++deliveries[s];
    });
  }
  d.nodes[0]->publish(9, 777);
  d.simulator.run();
  for (const auto s : subscribers) {
    EXPECT_EQ(deliveries[s], 1) << "peer " << s;
  }
}

TEST(Node, AnyMemberCanPublish) {
  NodeDeployment d(64, 37);
  d.nodes[0]->create_group(2);
  d.simulator.run();
  std::vector<PeerId> subscribers{7, 21, 42};
  for (const auto s : subscribers) d.nodes[s]->subscribe(2);
  d.simulator.run();
  // Peer 21 (a leaf) speaks; 7, 42 and the rendezvous all hear it.
  std::map<PeerId, int> deliveries;
  for (const PeerId listener : {0u, 7u, 42u}) {
    d.nodes[listener]->on_data(
        [&deliveries, listener](GroupId, std::uint64_t, PeerId origin) {
          EXPECT_EQ(origin, 21u);
          ++deliveries[listener];
        });
  }
  d.nodes[21]->publish(2, 1);
  d.simulator.run();
  EXPECT_EQ(deliveries[0], 1);
  EXPECT_EQ(deliveries[7], 1);
  EXPECT_EQ(deliveries[42], 1);
}

TEST(Node, SubscriberWithoutAdvertUsesRippleSearch) {
  // Tiny TTL so part of the overlay misses the advertisement.
  NodeOptions options;
  options.advertisement.ttl = 2;
  NodeDeployment d(64, 41, 0.0, options);
  auto& creator = *d.nodes[0];
  creator.create_group(3);
  d.simulator.run();
  // Find a peer without the advert whose neighbourhood holds one.
  for (PeerId p = 1; p < 64; ++p) {
    if (d.nodes[p]->has_advertisement(3)) continue;
    bool near_holder = false;
    for (const auto n : d.graph.neighbors(p)) {
      if (d.nodes[n]->has_advertisement(3)) near_holder = true;
    }
    if (!near_holder) continue;
    d.nodes[p]->subscribe(3);
    d.simulator.run();
    EXPECT_TRUE(d.nodes[p]->is_subscribed(3)) << "peer " << p;
    return;
  }
  GTEST_SKIP() << "advertisement reached everyone";
}

TEST(Node, SubscribeTimesOutWhenUnreachable) {
  NodeDeployment d(48, 43);
  // Nobody created the group: searches find nothing, timeout must fire.
  bool reported = false, ok = true;
  d.nodes[5]->on_subscribe_result([&](GroupId g, bool success) {
    EXPECT_EQ(g, 77u);
    reported = true;
    ok = success;
  });
  d.nodes[5]->subscribe(77);
  d.simulator.run();
  EXPECT_TRUE(reported);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(d.nodes[5]->is_subscribed(77));
}

TEST(Node, UnsubscribeLeafDetachesAndStopsDelivery) {
  NodeDeployment d(64, 47);
  d.nodes[0]->create_group(5);
  d.simulator.run();
  d.nodes[10]->subscribe(5);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[10]->is_subscribed(5));
  const auto parent = d.nodes[10]->tree_parent(5);
  d.nodes[10]->unsubscribe(5);
  d.simulator.run();
  EXPECT_FALSE(d.nodes[10]->on_tree(5));
  const auto kids = d.nodes[parent]->tree_children(5);
  EXPECT_EQ(std::find(kids.begin(), kids.end(), 10u), kids.end());
  int deliveries = 0;
  d.nodes[10]->on_data([&](GroupId, std::uint64_t, PeerId) { ++deliveries; });
  d.nodes[0]->publish(5, 123);
  d.simulator.run();
  EXPECT_EQ(deliveries, 0);
}

TEST(Node, RelayChainCollapsesAfterLastChildLeaves) {
  NodeDeployment d(64, 53);
  d.nodes[0]->create_group(6);
  d.simulator.run();
  d.nodes[30]->subscribe(6);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[30]->is_subscribed(6));
  // Record the relay chain above peer 30.
  std::vector<PeerId> chain;
  PeerId at = 30;
  while (at != 0u) {
    at = d.nodes[at]->tree_parent(6);
    if (at == 30u) break;
    chain.push_back(at);
  }
  d.nodes[30]->unsubscribe(6);
  d.simulator.run();
  // Relays that served only peer 30 must have left the tree again.
  for (const auto relay : chain) {
    if (relay == 0u) continue;
    if (d.nodes[relay]->is_subscribed(6)) continue;
    EXPECT_TRUE(d.nodes[relay]->tree_children(6).empty() ||
                d.nodes[relay]->on_tree(6));
  }
}

TEST(Node, DuplicatePayloadsSuppressed) {
  NodeDeployment d(48, 59);
  d.nodes[0]->create_group(8);
  d.simulator.run();
  d.nodes[20]->subscribe(8);
  d.simulator.run();
  int deliveries = 0;
  d.nodes[20]->on_data([&](GroupId, std::uint64_t, PeerId) { ++deliveries; });
  d.nodes[0]->publish(8, 42);
  d.simulator.run();
  d.nodes[0]->publish(8, 42);  // same id again: new send, deduped at nodes
  d.simulator.run();
  EXPECT_EQ(deliveries, 1);
}

TEST(Node, StopDropsInFlightDelivery) {
  NodeDeployment d(48, 61);
  d.nodes[0]->create_group(4);
  d.simulator.run();
  d.nodes[12]->subscribe(4);
  d.simulator.run();
  int deliveries = 0;
  d.nodes[12]->on_data([&](GroupId, std::uint64_t, PeerId) { ++deliveries; });
  d.nodes[0]->publish(4, 1);
  d.nodes[12]->crash();  // ungraceful departure before delivery
  d.simulator.run();
  EXPECT_EQ(deliveries, 0);
}

TEST(Node, GracefulStopDeliversFinalLeave) {
  NodeDeployment d(48, 61);
  d.nodes[0]->create_group(4);
  d.simulator.run();
  d.nodes[12]->subscribe(4);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[12]->is_subscribed(4));
  ASSERT_TRUE(d.nodes[12]->tree_children(4).empty());  // leaf: will Leave
  const auto parent = d.nodes[12]->tree_parent(4);
  // Leave then stop immediately: the in-flight Leave must still land so
  // the parent drops the child now instead of after heartbeat pruning.
  d.nodes[12]->unsubscribe(4);
  d.nodes[12]->stop();
  d.simulator.run();
  const auto siblings = d.nodes[parent]->tree_children(4);
  EXPECT_EQ(std::find(siblings.begin(), siblings.end(), PeerId{12}),
            siblings.end());
}

TEST(Node, ReattachRefreshesRetainedChildDepth) {
  NodeDeployment d(48, 29);
  d.nodes[0]->create_group(3);
  d.simulator.run();
  d.nodes[10]->subscribe(3);
  d.simulator.run();
  ASSERT_TRUE(d.nodes[10]->on_tree(3));
  const auto old_parent = d.nodes[10]->tree_parent(3);
  const auto old_depth = d.nodes[10]->tree_depth(3);
  // Hang a real child under 10 by injecting its Join directly.
  d.transport.send(30, 10, JoinMsg{3, 30});
  d.simulator.run();
  ASSERT_EQ(d.nodes[30]->tree_parent(3), PeerId{10});
  ASSERT_EQ(d.nodes[30]->tree_depth(3), old_depth + 1);
  // 10's parent dissolves; 10 re-attaches elsewhere and must push its new
  // depth to the retained child at once — heartbeats are disabled here, so
  // nothing else would ever refresh it.
  d.transport.send(old_parent, 10, ParentLostMsg{3});
  d.simulator.run();
  ASSERT_TRUE(d.nodes[10]->on_tree(3));
  // Seed chosen so the re-attach lands at a different depth; the final
  // check then pins the refresh rather than passing vacuously.
  ASSERT_NE(d.nodes[10]->tree_depth(3), old_depth);
  EXPECT_EQ(d.nodes[30]->tree_depth(3), d.nodes[10]->tree_depth(3) + 1);
}

TEST(Node, PublishRequiresMembership) {
  NodeDeployment d(48, 67);
  EXPECT_THROW(d.nodes[1]->publish(99, 1), PreconditionError);
  EXPECT_THROW(d.nodes[1]->unsubscribe(99), PreconditionError);
}

TEST(Node, LossyTransportStillConvergesWithRetries) {
  NodeDeployment d(48, 71, /*loss=*/0.05);
  d.nodes[0]->create_group(1);
  d.simulator.run();
  // With 5% loss some joins can fail; subscribe with one retry.
  std::vector<PeerId> subscribers{5, 10, 15, 20, 25};
  for (const auto s : subscribers) d.nodes[s]->subscribe(1);
  d.simulator.run();
  for (const auto s : subscribers) {
    if (!d.nodes[s]->is_subscribed(1)) d.nodes[s]->subscribe(1);
  }
  d.simulator.run();
  std::size_t subscribed = 0;
  for (const auto s : subscribers) {
    if (d.nodes[s]->is_subscribed(1)) ++subscribed;
  }
  EXPECT_GE(subscribed, 4u);
}

}  // namespace
}  // namespace groupcast::core
