// Tests for the overlay substrate: Table 1 capacities, peer populations,
// the overlay graph, host cache, utility-aware bootstrap, PLOD baseline,
// and churn / maintenance.
#include <gtest/gtest.h>

#include <set>

#include "metrics/graph_stats.h"
#include "overlay/bootstrap.h"
#include "overlay/churn.h"
#include "overlay/graph.h"
#include "overlay/host_cache.h"
#include "overlay/maintenance.h"
#include "overlay/peer.h"
#include "overlay/plod.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::overlay {
namespace {

// ---------------------------------------------------------------- Table 1

TEST(CapacityDistribution, Table1ResourceLevels) {
  const CapacityDistribution table1;
  EXPECT_DOUBLE_EQ(table1.resource_level(1.0), 0.0);
  EXPECT_DOUBLE_EQ(table1.resource_level(10.0), 0.20);
  EXPECT_DOUBLE_EQ(table1.resource_level(100.0), 0.65);
  EXPECT_DOUBLE_EQ(table1.resource_level(1000.0), 0.95);
  EXPECT_NEAR(table1.resource_level(10000.0), 0.999, 1e-12);
}

TEST(CapacityDistribution, SamplingMatchesTable1) {
  const CapacityDistribution table1;
  util::Rng rng(1);
  std::map<double, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table1.sample(rng)];
  EXPECT_NEAR(counts[1.0] / static_cast<double>(n), 0.20, 0.01);
  EXPECT_NEAR(counts[10.0] / static_cast<double>(n), 0.45, 0.01);
  EXPECT_NEAR(counts[100.0] / static_cast<double>(n), 0.30, 0.01);
  EXPECT_NEAR(counts[1000.0] / static_cast<double>(n), 0.049, 0.005);
  EXPECT_NEAR(counts[10000.0] / static_cast<double>(n), 0.001, 0.001);
}

TEST(CapacityDistribution, CustomTableValidation) {
  EXPECT_THROW(CapacityDistribution({2.0, 1.0}, {0.5, 0.5}),
               PreconditionError);  // not ascending
  EXPECT_THROW(CapacityDistribution({1.0}, {0.5, 0.5}),
               PreconditionError);  // size mismatch
  EXPECT_THROW(CapacityDistribution({-1.0, 2.0}, {0.5, 0.5}),
               PreconditionError);  // non-positive level
  const CapacityDistribution custom({1.0, 5.0}, {0.25, 0.75});
  EXPECT_DOUBLE_EQ(custom.resource_level(5.0), 0.25);
}

// ----------------------------------------------------------- population

TEST(PeerPopulation, LatencySymmetricNonNegativeZeroOnSelf) {
  testing::SmallWorld world(24, 5);
  const auto& population = *world.population;
  for (PeerId a = 0; a < 24; ++a) {
    EXPECT_DOUBLE_EQ(population.latency_ms(a, a), 0.0);
    for (PeerId b = 0; b < 24; ++b) {
      EXPECT_DOUBLE_EQ(population.latency_ms(a, b),
                       population.latency_ms(b, a));
      if (a != b) {
        EXPECT_GT(population.latency_ms(a, b), 0.0);
      }
    }
  }
}

TEST(PeerPopulation, PeersAttachToStubRouters) {
  testing::SmallWorld world(32, 7);
  for (const auto& peer : world.population->peers()) {
    EXPECT_EQ(world.underlay->router(peer.router).kind,
              net::RouterKind::kStub);
    EXPECT_GT(peer.access_latency_ms, 0.0);
    EXPECT_GT(peer.capacity, 0.0);
  }
}

TEST(PeerPopulation, SampledResourceLevelTracksExact) {
  testing::SmallWorld world(128, 9);
  const auto& population = *world.population;
  util::Rng rng(10);
  for (PeerId p = 0; p < 128; p += 17) {
    const double sampled = population.sampled_resource_level(p, 64, rng);
    EXPECT_NEAR(sampled, population.resource_level(p), 0.25);
  }
}

// ---------------------------------------------------------------- graph

TEST(OverlayGraph, AddRemoveEdges) {
  OverlayGraph graph(4);
  EXPECT_TRUE(graph.add_edge(0, 1));
  EXPECT_FALSE(graph.add_edge(0, 1));  // duplicate
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_FALSE(graph.has_edge(1, 0));  // directed
  EXPECT_TRUE(graph.connected(1, 0));  // either direction
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_TRUE(graph.remove_edge(0, 1));
  EXPECT_FALSE(graph.remove_edge(0, 1));
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(OverlayGraph, RejectsSelfEdgeAndRange) {
  OverlayGraph graph(3);
  EXPECT_THROW(graph.add_edge(1, 1), PreconditionError);
  EXPECT_THROW(graph.add_edge(0, 5), PreconditionError);
}

TEST(OverlayGraph, NeighborsMergesDirections) {
  OverlayGraph graph(5);
  graph.add_edge(0, 1);
  graph.add_edge(2, 0);
  graph.add_edge(0, 3);
  graph.add_edge(3, 0);  // both directions -> still one neighbour
  const auto nbrs = graph.neighbors(0);
  EXPECT_EQ(std::set<PeerId>(nbrs.begin(), nbrs.end()),
            (std::set<PeerId>{1, 2, 3}));
  EXPECT_EQ(graph.degree(0), 3u);
}

TEST(OverlayGraph, IsolateRemovesAllIncidentEdges) {
  OverlayGraph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(2, 0);
  graph.add_edge(0, 3);
  graph.isolate(0);
  EXPECT_EQ(graph.degree(0), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(OverlayGraph, ConnectivityReport) {
  OverlayGraph graph(6);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(3, 4);  // second component; 5 isolated
  const auto report = graph.connectivity();
  EXPECT_FALSE(report.connected);
  EXPECT_EQ(report.isolated_peers, 1u);
  EXPECT_EQ(report.largest_component, 3u);
  graph.add_edge(2, 3);
  graph.add_edge(4, 5);
  EXPECT_TRUE(graph.connectivity().connected);
}

TEST(OverlayGraph, ClusteringCoefficientKnownGraphs) {
  // Triangle: coefficient 1.
  OverlayGraph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(2, 0);
  EXPECT_DOUBLE_EQ(triangle.clustering_coefficient(), 1.0);
  // Star: centre has no closed pairs -> coefficient 0.
  OverlayGraph star(4);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(star.clustering_coefficient(), 0.0);
}

TEST(OverlayGraph, AverageHopDistanceOnLine) {
  OverlayGraph line(10);
  for (PeerId p = 0; p + 1 < 10; ++p) line.add_edge(p, p + 1);
  util::Rng rng(3);
  const double avg = line.average_hop_distance(rng, 500);
  // Expected mean |i-j| over uniform pairs of 10 nodes is 3.3.
  EXPECT_NEAR(avg, 3.3, 0.6);
}

// ------------------------------------------------------------ host cache

TEST(HostCache, RegisterDeregisterContains) {
  testing::SmallWorld world(32, 11);
  HostCacheServer cache(*world.population, HostCacheOptions{}, world.rng);
  cache.register_peer(3);
  cache.register_peer(3);  // idempotent
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.size(), 1u);
  cache.deregister_peer(3);
  EXPECT_FALSE(cache.contains(3));
  cache.deregister_peer(3);  // no-op
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HostCache, EvictsWhenFull) {
  testing::SmallWorld world(64, 13);
  HostCacheOptions options;
  options.capacity = 8;
  HostCacheServer cache(*world.population, options, world.rng);
  for (PeerId p = 0; p < 32; ++p) cache.register_peer(p);
  EXPECT_EQ(cache.size(), 8u);
}

TEST(HostCache, CandidatesExcludeJoinerAndAreDistinct) {
  testing::SmallWorld world(48, 17);
  HostCacheServer cache(*world.population, HostCacheOptions{}, world.rng);
  for (PeerId p = 0; p < 48; ++p) cache.register_peer(p);
  for (int trial = 0; trial < 20; ++trial) {
    const auto batch = cache.bootstrap_candidates(5);
    EXPECT_GE(batch.size(), 5u);
    EXPECT_LE(batch.size(), 8u);
    std::set<PeerId> unique(batch.begin(), batch.end());
    EXPECT_EQ(unique.size(), batch.size());
    EXPECT_FALSE(unique.contains(5));
  }
}

TEST(HostCache, ClosestHalfAreActuallyClose) {
  testing::SmallWorld world(48, 19);
  const auto& population = *world.population;
  HostCacheServer cache(population, HostCacheOptions{}, world.rng);
  for (PeerId p = 0; p < 48; ++p) cache.register_peer(p);
  const PeerId joiner = 0;
  const auto batch = cache.bootstrap_candidates(joiner);
  ASSERT_GE(batch.size(), 5u);
  // The first entry is the globally closest cached peer by coordinates.
  double min_dist = 1e18;
  for (PeerId p = 1; p < 48; ++p) {
    min_dist = std::min(min_dist, population.coord_distance_ms(joiner, p));
  }
  EXPECT_NEAR(population.coord_distance_ms(joiner, batch.front()), min_dist,
              1e-9);
}

TEST(HostCache, EmptyCacheYieldsNoCandidates) {
  testing::SmallWorld world(16, 23);
  HostCacheServer cache(*world.population, HostCacheOptions{}, world.rng);
  EXPECT_TRUE(cache.bootstrap_candidates(0).empty());
  cache.register_peer(4);
  EXPECT_TRUE(cache.bootstrap_candidates(4).empty());  // only the joiner
}

// ------------------------------------------------------------- bootstrap

struct BootstrapFixture {
  testing::SmallWorld world;
  OverlayGraph graph;
  HostCacheServer cache;
  GroupCastBootstrap bootstrap;

  explicit BootstrapFixture(std::size_t peers = 96, std::uint64_t seed = 29)
      : world(peers, seed),
        graph(peers),
        cache(*world.population, HostCacheOptions{}, world.rng),
        bootstrap(*world.population, graph, cache, BootstrapOptions{},
                  world.rng) {}
};

TEST(Bootstrap, TargetDegreeMonotonicInCapacity) {
  BootstrapFixture f;
  const auto& b = f.bootstrap;
  EXPECT_LE(b.target_degree(1.0), b.target_degree(10.0));
  EXPECT_LE(b.target_degree(10.0), b.target_degree(100.0));
  EXPECT_LE(b.target_degree(100.0), b.target_degree(10000.0));
  EXPECT_GE(b.target_degree(1.0), b.options().degree_min);
  EXPECT_LE(b.target_degree(1e12), b.options().degree_max);
}

TEST(Bootstrap, JoinRegistersAndConnects) {
  BootstrapFixture f;
  f.bootstrap.join(0);
  EXPECT_TRUE(f.bootstrap.is_joined(0));
  EXPECT_TRUE(f.cache.contains(0));
  // First joiner has no one to connect to.
  EXPECT_EQ(f.graph.degree(0), 0u);
  f.bootstrap.join(1);
  EXPECT_GT(f.graph.degree(1), 0u);  // found peer 0 via the cache
  EXPECT_THROW(f.bootstrap.join(1), PreconditionError);  // double join
}

TEST(Bootstrap, FullJoinProducesLargelyConnectedOverlay) {
  BootstrapFixture f(128, 31);
  for (PeerId p = 0; p < 128; ++p) f.bootstrap.join(p);
  const auto report = f.graph.connectivity();
  EXPECT_GE(report.largest_component, 120u);
}

TEST(Bootstrap, OutDegreeBoundedByTarget) {
  BootstrapFixture f(128, 37);
  for (PeerId p = 0; p < 128; ++p) {
    f.bootstrap.join(p);
    const auto target =
        f.bootstrap.target_degree(f.world.population->info(p).capacity);
    EXPECT_LE(f.graph.out_neighbors(p).size(), target);
  }
}

TEST(Bootstrap, BackLinkProbabilityInUnitInterval) {
  BootstrapFixture f(96, 41);
  for (PeerId p = 0; p < 96; ++p) f.bootstrap.join(p);
  for (PeerId k = 0; k < 96; k += 7) {
    const auto nbrs = f.graph.neighbors(k);
    for (PeerId i = 0; i < 96; i += 11) {
      if (i == k) continue;
      const double pb = f.bootstrap.back_link_probability(k, i, nbrs);
      EXPECT_GE(pb, 0.0);
      EXPECT_LE(pb, 1.0);
    }
  }
}

TEST(Bootstrap, EmptyNeighbourhoodAcceptsBackLink) {
  BootstrapFixture f;
  EXPECT_DOUBLE_EQ(f.bootstrap.back_link_probability(0, 1, {}), 1.0);
}

TEST(Bootstrap, LeaveRemovesEverything) {
  BootstrapFixture f(64, 43);
  for (PeerId p = 0; p < 64; ++p) f.bootstrap.join(p);
  f.bootstrap.leave(10);
  EXPECT_FALSE(f.bootstrap.is_joined(10));
  EXPECT_FALSE(f.cache.contains(10));
  EXPECT_EQ(f.graph.degree(10), 0u);
  EXPECT_THROW(f.bootstrap.leave(10), PreconditionError);
  // Rejoin works.
  f.bootstrap.join(10);
  EXPECT_TRUE(f.bootstrap.is_joined(10));
}

TEST(Bootstrap, FailKeepsStaleStateForMaintenance) {
  BootstrapFixture f(64, 47);
  for (PeerId p = 0; p < 64; ++p) f.bootstrap.join(p);
  const auto degree_before = f.graph.degree(20);
  ASSERT_GT(degree_before, 0u);
  f.bootstrap.fail(20);
  EXPECT_FALSE(f.bootstrap.is_joined(20));
  EXPECT_TRUE(f.cache.contains(20));             // stale directory entry
  EXPECT_EQ(f.graph.degree(20), degree_before);  // half-open links remain
  f.bootstrap.report_failure(20);
  EXPECT_FALSE(f.cache.contains(20));
}

TEST(Bootstrap, RefillTopsUpAfterNeighbourLoss) {
  BootstrapFixture f(96, 53);
  for (PeerId p = 0; p < 96; ++p) f.bootstrap.join(p);
  // Kill all of peer 5's out-neighbours.
  const auto outs = f.graph.out_neighbors(5);
  for (const auto nbr : std::vector<PeerId>(outs.begin(), outs.end())) {
    f.graph.remove_edge(5, nbr);
  }
  EXPECT_EQ(f.graph.out_neighbors(5).size(), 0u);
  const auto added = f.bootstrap.refill(5);
  EXPECT_GT(added, 0u);
  EXPECT_EQ(f.graph.out_neighbors(5).size(), added);
}

TEST(Bootstrap, RefillNoOpAtTarget) {
  BootstrapFixture f(96, 59);
  for (PeerId p = 0; p < 96; ++p) f.bootstrap.join(p);
  // Find a peer already at its target degree.
  for (PeerId p = 0; p < 96; ++p) {
    const auto target =
        f.bootstrap.target_degree(f.world.population->info(p).capacity);
    if (f.graph.out_neighbors(p).size() >= target) {
      EXPECT_EQ(f.bootstrap.refill(p), 0u);
      return;
    }
  }
  GTEST_SKIP() << "no saturated peer in this topology";
}

// ------------------------------------------------------------------ PLOD

TEST(Plod, ProducesConnectedPowerLawGraph) {
  OverlayGraph graph(600);
  util::Rng rng(61);
  const auto result = generate_plod(graph, PlodOptions{}, rng);
  EXPECT_GT(result.placed_edges, 0u);
  EXPECT_TRUE(graph.connectivity().connected);
  const auto dist = metrics::degree_distribution(graph);
  EXPECT_LT(dist.log_log_slope(), -0.8);  // clearly decaying tail
}

TEST(Plod, EdgesAreSymmetricPairs) {
  OverlayGraph graph(200);
  util::Rng rng(67);
  generate_plod(graph, PlodOptions{}, rng);
  for (PeerId p = 0; p < 200; ++p) {
    for (const auto q : graph.out_neighbors(p)) {
      EXPECT_TRUE(graph.has_edge(q, p));
    }
  }
}

TEST(Plod, RequiresEmptyGraph) {
  OverlayGraph graph(10);
  graph.add_edge(0, 1);
  util::Rng rng(71);
  EXPECT_THROW(generate_plod(graph, PlodOptions{}, rng), PreconditionError);
}

TEST(Plod, RespectsDegreeCap) {
  OverlayGraph graph(300);
  util::Rng rng(73);
  PlodOptions options;
  options.max_degree = 10;
  generate_plod(graph, options, rng);
  for (PeerId p = 0; p < 300; ++p) {
    // repair edges can add at most a couple beyond the credit cap
    EXPECT_LE(graph.degree(p), 12u);
  }
}

// --------------------------------------------------------- churn + repair

TEST(Churn, JoinsEveryoneWithoutDepartures) {
  BootstrapFixture f(48, 79);
  sim::Simulator simulator;
  ChurnOptions options;  // no sessions
  ChurnModel churn(simulator, f.bootstrap, options, f.world.rng);
  std::vector<PeerId> order;
  for (PeerId p = 0; p < 48; ++p) order.push_back(p);
  churn.start(order);
  simulator.run();
  EXPECT_EQ(churn.stats().joins, 48u);
  EXPECT_EQ(churn.stats().graceful_leaves + churn.stats().failures, 0u);
  for (PeerId p = 0; p < 48; ++p) EXPECT_TRUE(f.bootstrap.is_joined(p));
}

TEST(Churn, SessionsEndInDepartures) {
  BootstrapFixture f(48, 83);
  sim::Simulator simulator;
  ChurnOptions options;
  options.mean_interarrival = sim::SimTime::seconds(0.5);
  options.mean_session = sim::SimTime::seconds(30.0);
  options.failure_fraction = 0.5;
  ChurnModel churn(simulator, f.bootstrap, options, f.world.rng);
  std::vector<PeerId> order;
  for (PeerId p = 0; p < 48; ++p) order.push_back(p);
  churn.start(order);
  simulator.run();
  EXPECT_EQ(churn.stats().joins, 48u);
  EXPECT_EQ(churn.stats().graceful_leaves + churn.stats().failures, 48u);
  EXPECT_GT(churn.stats().failures, 5u);  // ~half at p=0.5
  EXPECT_GT(churn.stats().graceful_leaves, 5u);
}

TEST(Maintenance, DetectsCrashAndRepairs) {
  BootstrapFixture f(64, 89);
  for (PeerId p = 0; p < 64; ++p) f.bootstrap.join(p);
  sim::Simulator simulator;
  MaintenanceOptions options;
  options.heartbeat_interval = sim::SimTime::seconds(10);
  options.epoch = sim::SimTime::seconds(40);
  MaintenanceProtocol maintenance(simulator, *f.world.population, f.graph,
                                  f.bootstrap, options);
  // Crash a well-connected peer.
  PeerId victim = 0;
  for (PeerId p = 0; p < 64; ++p) {
    if (f.graph.degree(p) > f.graph.degree(victim)) victim = p;
  }
  const auto dead_degree = f.graph.degree(victim);
  ASSERT_GT(dead_degree, 0u);
  f.bootstrap.fail(victim);
  maintenance.start(sim::SimTime::seconds(400));
  simulator.run_until(sim::SimTime::seconds(400));
  EXPECT_GT(maintenance.stats().epochs, 1u);
  EXPECT_GT(maintenance.stats().dead_links_removed, 0u);
  EXPECT_EQ(f.graph.degree(victim), 0u);       // fully cleaned up
  EXPECT_FALSE(f.cache.contains(victim));      // stale entry purged
  EXPECT_GT(maintenance.stats().heartbeat_messages, 0u);
}

TEST(Maintenance, EpochAdaptsUnderHeavyChurn) {
  BootstrapFixture f(96, 97);
  for (PeerId p = 0; p < 96; ++p) f.bootstrap.join(p);
  sim::Simulator simulator;
  MaintenanceOptions options;
  options.heartbeat_interval = sim::SimTime::seconds(5);
  options.epoch = sim::SimTime::seconds(60);
  options.min_epoch = sim::SimTime::seconds(10);
  options.churn_high_watermark = 2;
  MaintenanceProtocol maintenance(simulator, *f.world.population, f.graph,
                                  f.bootstrap, options);
  // Crash a third of the overlay at once.
  for (PeerId p = 0; p < 96; p += 3) f.bootstrap.fail(p);
  maintenance.start(sim::SimTime::seconds(200));
  simulator.run_until(sim::SimTime::seconds(200));
  EXPECT_LT(maintenance.current_epoch_length(), options.epoch);
}

}  // namespace
}  // namespace groupcast::overlay
