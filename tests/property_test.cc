// Cross-module property suites (parameterized sweeps): invariants that must
// hold for every seed, overlay kind, and announcement scheme.
#include <gtest/gtest.h>

#include <tuple>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"
#include "metrics/graph_stats.h"

namespace groupcast {
namespace {

using core::AnnouncementScheme;
using core::GroupCastMiddleware;
using core::MiddlewareConfig;
using core::OverlayKind;
using overlay::PeerId;

// ------------------------------------------------- full-pipeline invariants

class PipelineProperty
    : public ::testing::TestWithParam<
          std::tuple<OverlayKind, AnnouncementScheme, std::uint64_t>> {
 protected:
  MiddlewareConfig config() const {
    MiddlewareConfig c;
    c.peer_count = 120;
    c.overlay = std::get<0>(GetParam());
    c.advertisement.scheme = std::get<1>(GetParam());
    c.seed = std::get<2>(GetParam());
    return c;
  }
};

TEST_P(PipelineProperty, OverlayIsConnectedAndFinite) {
  GroupCastMiddleware middleware(config());
  EXPECT_TRUE(middleware.graph().connectivity().connected);
  for (PeerId p = 0; p < 120; ++p) {
    EXPECT_LT(middleware.graph().degree(p), 120u);
  }
}

TEST_P(PipelineProperty, GroupEstablishmentInvariants) {
  GroupCastMiddleware middleware(config());
  auto group = middleware.establish_random_group(24);

  // Tree invariants.
  EXPECT_TRUE(group.tree.is_consistent());
  EXPECT_LE(group.tree.subscriber_count(), 24u + 1u);
  EXPECT_GE(group.tree.node_count(), group.tree.subscriber_count());

  // Every tree edge is an overlay link or a search-created attachment to a
  // peer at most ripple_ttl hops away; in both cases parent and child must
  // know each other, i.e. the parent is on the tree before the child.
  for (const auto node : group.tree.nodes()) {
    if (node == group.tree.root()) continue;
    EXPECT_TRUE(group.tree.contains(group.tree.parent(node)));
  }

  // Advertisement bookkeeping.
  const auto rate = group.advert.receiving_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  EXPECT_GT(group.advert.messages, 0u);

  // Subscription accounting is within bounds.
  for (const auto& outcome : group.report.outcomes) {
    if (outcome.had_advertisement) {
      EXPECT_EQ(outcome.search_messages, 0u);
    }
    if (outcome.success) {
      EXPECT_GE(outcome.response_time_ms, 0.0);
      EXPECT_NE(outcome.attach_point, overlay::kNoPeer);
    }
  }
}

TEST_P(PipelineProperty, DisseminationReachesAllSubscribersExactlyOnce) {
  GroupCastMiddleware middleware(config());
  auto group = middleware.establish_random_group(24);
  const auto session = middleware.session(group);
  const auto result = session.disseminate(group.advert.rendezvous);
  std::size_t expected = group.tree.subscriber_count();
  if (group.tree.is_subscriber(group.advert.rendezvous)) --expected;
  EXPECT_EQ(result.subscriber_delay_ms.size(), expected);
  EXPECT_EQ(result.payload_messages, group.tree.node_count() - 1);
}

TEST_P(PipelineProperty, EsmMetricsBoundedBelowByBaseline) {
  GroupCastMiddleware middleware(config());
  auto group = middleware.establish_random_group(24);
  if (group.tree.subscriber_count() < 2) GTEST_SKIP();
  const auto session = middleware.session(group);
  const auto m = metrics::evaluate_session(middleware.population(), session,
                                           group.advert.rendezvous);
  EXPECT_GE(m.delay_penalty, 1.0 - 1e-9);
  EXPECT_GE(m.link_stress, 1.0 - 1e-9);
  EXPECT_GE(m.overload_index, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineProperty,
    ::testing::Combine(
        ::testing::Values(OverlayKind::kGroupCast,
                          OverlayKind::kRandomPowerLaw,
                          OverlayKind::kSupernode),
        ::testing::Values(AnnouncementScheme::kSsaUtility,
                          AnnouncementScheme::kSsaRandom,
                          AnnouncementScheme::kNssa),
        ::testing::Values(1u, 2u, 3u)));

// ------------------------------------------------ headline paper contrasts

class HeadlineContrast : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeadlineContrast, GroupCastBeatsRandomOnProximity) {
  MiddlewareConfig gc_config, pl_config;
  gc_config.peer_count = pl_config.peer_count = 200;
  gc_config.seed = pl_config.seed = GetParam();
  pl_config.overlay = OverlayKind::kRandomPowerLaw;
  GroupCastMiddleware gc(gc_config), pl(pl_config);
  const auto gc_prox =
      metrics::neighbor_distance_summary(gc.population(), gc.graph());
  const auto pl_prox =
      metrics::neighbor_distance_summary(pl.population(), pl.graph());
  EXPECT_LT(gc_prox.mean(), 0.8 * pl_prox.mean());
}

TEST_P(HeadlineContrast, SsaCheaperThanNssaOnBothOverlays) {
  for (const auto kind :
       {OverlayKind::kGroupCast, OverlayKind::kRandomPowerLaw}) {
    MiddlewareConfig config;
    config.peer_count = 200;
    config.seed = GetParam();
    config.overlay = kind;
    config.advertisement.scheme = AnnouncementScheme::kSsaUtility;
    GroupCastMiddleware ssa(config);
    auto ssa_group = ssa.establish_random_group(20);
    config.advertisement.scheme = AnnouncementScheme::kNssa;
    GroupCastMiddleware nssa(config);
    auto nssa_group = nssa.establish_random_group(20);
    EXPECT_LT(ssa_group.advert.messages, nssa_group.advert.messages)
        << core::to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeadlineContrast,
                         ::testing::Values(101, 202, 303));

// ------------------------------------------------------ degree law sweeps

class DegreeLaw : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DegreeLaw, BothOverlaysShowDecayingDegreeTail) {
  for (const auto kind :
       {OverlayKind::kGroupCast, OverlayKind::kRandomPowerLaw}) {
    MiddlewareConfig config;
    config.peer_count = 400;
    config.seed = GetParam();
    config.overlay = kind;
    GroupCastMiddleware middleware(config);
    const auto dist = metrics::degree_distribution(middleware.graph());
    EXPECT_LT(dist.log_log_slope(), -0.5) << core::to_string(kind);
    EXPECT_EQ(dist.total(), 400u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeLaw, ::testing::Values(7, 8));

}  // namespace
}  // namespace groupcast
