// Tests for the announcement (SSA/NSSA) and subscription protocols and the
// spanning tree they grow.
#include <gtest/gtest.h>

#include <set>

#include "core/advertisement.h"
#include "core/spanning_tree.h"
#include "core/subscription.h"
#include "overlay/bootstrap.h"
#include "overlay/host_cache.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

using overlay::kNoPeer;
using overlay::PeerId;

/// A populated small world with a fully joined GroupCast overlay.
struct ProtocolFixture {
  testing::SmallWorld world;
  overlay::OverlayGraph graph;
  sim::Simulator simulator;

  explicit ProtocolFixture(std::size_t peers = 80, std::uint64_t seed = 7)
      : world(peers, seed), graph(peers) {
    overlay::HostCacheServer cache(*world.population,
                                   overlay::HostCacheOptions{}, world.rng);
    overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                          overlay::BootstrapOptions{},
                                          world.rng);
    for (PeerId p = 0; p < peers; ++p) bootstrap.join(p);
  }

  AdvertisementState announce(AnnouncementScheme scheme, PeerId rendezvous,
                              MessageStats* stats = nullptr,
                              std::size_t ttl = 10) {
    AdvertisementOptions options;
    options.scheme = scheme;
    options.ttl = ttl;
    AdvertisementEngine engine(simulator, *world.population, graph, options,
                               world.rng);
    return engine.announce(rendezvous, stats);
  }
};

// ----------------------------------------------------------- spanning tree

TEST(SpanningTree, RootIsItsOwnParent) {
  SpanningTree tree(5);
  EXPECT_EQ(tree.root(), 5u);
  EXPECT_TRUE(tree.contains(5));
  EXPECT_EQ(tree.parent(5), 5u);
  EXPECT_EQ(tree.depth(5), 0u);
  EXPECT_TRUE(tree.is_consistent());
}

TEST(SpanningTree, AttachBuildsParentChildLinks) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.attach(2, 1);
  tree.attach(3, 1);
  EXPECT_EQ(tree.parent(2), 1u);
  EXPECT_EQ(tree.depth(2), 2u);
  EXPECT_EQ(tree.children(1).size(), 2u);
  EXPECT_EQ(tree.node_count(), 4u);
  EXPECT_EQ(tree.max_depth(), 2u);
  EXPECT_TRUE(tree.is_consistent());
}

TEST(SpanningTree, AttachRequiresParentOnTree) {
  SpanningTree tree(0);
  EXPECT_THROW(tree.attach(2, 1), PreconditionError);
  EXPECT_THROW(tree.attach(1, 1), PreconditionError);
}

TEST(SpanningTree, ReattachIsIgnored) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.attach(2, 0);
  tree.attach(1, 2);  // already attached under 0: kept there
  EXPECT_EQ(tree.parent(1), 0u);
  EXPECT_TRUE(tree.is_consistent());
}

TEST(SpanningTree, SubscribersAreTracked) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.mark_subscriber(1);
  EXPECT_TRUE(tree.is_subscriber(1));
  EXPECT_FALSE(tree.is_subscriber(0));
  EXPECT_EQ(tree.subscriber_count(), 1u);
  EXPECT_THROW(tree.mark_subscriber(9), PreconditionError);
}

TEST(SpanningTree, PruneRemovesSubtree) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.attach(2, 1);
  tree.attach(3, 2);
  tree.attach(4, 0);
  tree.mark_subscriber(3);
  EXPECT_EQ(tree.prune(1), 3u);  // 1, 2, 3
  EXPECT_FALSE(tree.contains(1));
  EXPECT_FALSE(tree.contains(3));
  EXPECT_TRUE(tree.contains(4));
  EXPECT_EQ(tree.subscriber_count(), 0u);
  EXPECT_TRUE(tree.is_consistent());
  EXPECT_THROW(tree.prune(0), PreconditionError);  // cannot prune root
}

// ----------------------------------------------------------- advertisement

TEST(Advertisement, NssaReachesEveryConnectedPeer) {
  ProtocolFixture f(60, 11);
  ASSERT_TRUE(f.graph.connectivity().connected);
  const auto advert = f.announce(AnnouncementScheme::kNssa, 0);
  EXPECT_DOUBLE_EQ(advert.receiving_rate(), 1.0);
  for (PeerId p = 0; p < 60; ++p) EXPECT_TRUE(advert.received(p));
}

TEST(Advertisement, ParentPointersFormTreeToRendezvous) {
  ProtocolFixture f(60, 13);
  const auto advert = f.announce(AnnouncementScheme::kSsaUtility, 3);
  EXPECT_EQ(advert.parent[3], 3u);
  for (PeerId p = 0; p < 60; ++p) {
    if (!advert.received(p) || p == 3) continue;
    // Walk to the rendezvous without cycles.
    PeerId at = p;
    std::size_t steps = 0;
    while (at != 3u) {
      const auto up = advert.parent[at];
      ASSERT_NE(up, kNoPeer);
      // Parents must be overlay neighbours (messages travel on links).
      EXPECT_TRUE(f.graph.connected(at, up));
      at = up;
      ASSERT_LE(++steps, 60u) << "cycle in advert parents";
    }
  }
}

TEST(Advertisement, ArrivalTimesIncreaseAlongPaths) {
  ProtocolFixture f(60, 17);
  const auto advert = f.announce(AnnouncementScheme::kNssa, 0);
  for (PeerId p = 1; p < 60; ++p) {
    if (!advert.received(p)) continue;
    const auto up = advert.parent[p];
    if (up == p) continue;
    EXPECT_GT(advert.arrival[p], advert.arrival[up]);
  }
}

TEST(Advertisement, SsaSendsFewerMessagesThanNssa) {
  ProtocolFixture f(80, 19);
  const auto nssa = f.announce(AnnouncementScheme::kNssa, 0);
  const auto ssa = f.announce(AnnouncementScheme::kSsaUtility, 0);
  const auto ssa_random = f.announce(AnnouncementScheme::kSsaRandom, 0);
  EXPECT_LT(ssa.messages, nssa.messages);
  EXPECT_LT(ssa_random.messages, nssa.messages);
}

TEST(Advertisement, TtlBoundsPropagationDepth) {
  ProtocolFixture f(80, 23);
  const auto advert = f.announce(AnnouncementScheme::kNssa, 0, nullptr, 2);
  // With TTL 2 nobody beyond 2 overlay hops can receive.  Verify via BFS.
  std::vector<int> hops(80, -1);
  hops[0] = 0;
  std::vector<PeerId> frontier{0};
  for (int level = 0; level < 2; ++level) {
    std::vector<PeerId> next;
    for (const auto u : frontier) {
      for (const auto v : f.graph.neighbors(u)) {
        if (hops[v] < 0) {
          hops[v] = level + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  for (PeerId p = 0; p < 80; ++p) {
    if (advert.received(p)) {
      EXPECT_GE(hops[p], 0) << "peer " << p << " unreachable in 2 hops";
    }
  }
}

TEST(Advertisement, MessageStatsMatchStateCount) {
  ProtocolFixture f(60, 29);
  MessageStats stats;
  const auto advert = f.announce(AnnouncementScheme::kSsaUtility, 0, &stats);
  EXPECT_EQ(stats.advertisement_messages(), advert.messages);
}

TEST(Advertisement, DeterministicForSameSeed) {
  ProtocolFixture a(50, 31), b(50, 31);
  const auto adv_a = a.announce(AnnouncementScheme::kSsaUtility, 2);
  const auto adv_b = b.announce(AnnouncementScheme::kSsaUtility, 2);
  EXPECT_EQ(adv_a.messages, adv_b.messages);
  EXPECT_EQ(adv_a.parent, adv_b.parent);
}

TEST(Advertisement, SchemeNames) {
  EXPECT_STREQ(to_string(AnnouncementScheme::kNssa), "NSSA");
  EXPECT_STREQ(to_string(AnnouncementScheme::kSsaUtility), "SSA");
  EXPECT_STREQ(to_string(AnnouncementScheme::kSsaRandom), "SSA-random");
}

// ------------------------------------------------------------ subscription

TEST(Subscription, AdvertHolderJoinsViaReversePath) {
  ProtocolFixture f(60, 37);
  const auto advert = f.announce(AnnouncementScheme::kNssa, 0);
  SpanningTree tree(0);
  SubscriptionProtocol protocol(*f.world.population, f.graph,
                                SubscriptionOptions{});
  // Everyone received NSSA; pick a far peer.
  const auto outcome = protocol.subscribe(advert, 42, tree);
  EXPECT_TRUE(outcome.success);
  EXPECT_TRUE(outcome.had_advertisement);
  EXPECT_EQ(outcome.search_messages, 0u);
  EXPECT_GT(outcome.join_messages, 0u);
  EXPECT_TRUE(tree.contains(42));
  EXPECT_TRUE(tree.is_subscriber(42));
  EXPECT_TRUE(tree.is_consistent());
  // The whole reverse path is on the tree.
  PeerId at = 42;
  while (at != 0u) {
    EXPECT_TRUE(tree.contains(at));
    at = advert.parent[at];
  }
}

TEST(Subscription, TreeFollowsAdvertisementParents) {
  ProtocolFixture f(60, 41);
  const auto advert = f.announce(AnnouncementScheme::kNssa, 5);
  SpanningTree tree(5);
  SubscriptionProtocol protocol(*f.world.population, f.graph,
                                SubscriptionOptions{});
  std::vector<PeerId> subscribers{10, 20, 30, 40, 50};
  const auto report = protocol.subscribe_all(advert, subscribers, tree);
  EXPECT_DOUBLE_EQ(report.success_rate(), 1.0);
  for (const auto s : subscribers) {
    EXPECT_EQ(tree.parent(s), advert.parent[s]);
  }
}

TEST(Subscription, SecondSubscriberStopsAtExistingTree) {
  ProtocolFixture f(60, 43);
  const auto advert = f.announce(AnnouncementScheme::kNssa, 0);
  SpanningTree tree(0);
  SubscriptionProtocol protocol(*f.world.population, f.graph,
                                SubscriptionOptions{});
  // Subscribe a peer, then its advert-parent: the parent is already a
  // relay, so its join costs no messages beyond the ack.
  const auto first = protocol.subscribe(advert, 42, tree);
  ASSERT_TRUE(first.success);
  const auto relay = advert.parent[42];
  if (relay != 0u) {
    const auto second = protocol.subscribe(advert, relay, tree);
    EXPECT_TRUE(second.success);
    EXPECT_EQ(second.join_messages, 0u);  // already on the tree
    EXPECT_TRUE(tree.is_subscriber(relay));
  }
}

TEST(Subscription, RippleSearchFindsNearbyHolder) {
  // Hand-built line overlay: 0 - 1 - 2 - 3.  Advertise only to {0, 1};
  // peer 3 is two hops from holder 1 and must succeed at TTL 2.
  testing::SmallWorld world(4, 47);
  overlay::OverlayGraph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  AdvertisementState advert;
  advert.rendezvous = 0;
  advert.parent = {0, 0, kNoPeer, kNoPeer};
  advert.arrival.assign(4, sim::SimTime::zero());
  SpanningTree tree(0);
  SubscriptionProtocol protocol(*world.population, graph,
                                SubscriptionOptions{});
  const auto outcome = protocol.subscribe(advert, 3, tree);
  EXPECT_TRUE(outcome.success);
  EXPECT_FALSE(outcome.had_advertisement);
  EXPECT_GT(outcome.search_messages, 0u);
  EXPECT_EQ(outcome.attach_point, 1u);
  EXPECT_TRUE(tree.contains(3));
  EXPECT_TRUE(tree.contains(1));
  EXPECT_TRUE(tree.is_consistent());
}

TEST(Subscription, RippleSearchFailsBeyondTtl) {
  // Line 0 - 1 - 2 - 3 - 4, holder only at 0 and 1; peer 4 is 3 hops from
  // the nearest holder: TTL-2 search must fail.
  testing::SmallWorld world(5, 53);
  overlay::OverlayGraph graph(5);
  for (PeerId p = 0; p + 1 < 5; ++p) graph.add_edge(p, p + 1);
  AdvertisementState advert;
  advert.rendezvous = 0;
  advert.parent = {0, 0, kNoPeer, kNoPeer, kNoPeer};
  advert.arrival.assign(5, sim::SimTime::zero());
  SpanningTree tree(0);
  SubscriptionProtocol protocol(*world.population, graph,
                                SubscriptionOptions{});
  const auto outcome = protocol.subscribe(advert, 4, tree);
  EXPECT_FALSE(outcome.success);
  EXPECT_FALSE(tree.contains(4));
}

TEST(Subscription, ResponseTimeIsRoundTripToAttachPoint) {
  ProtocolFixture f(60, 59);
  const auto advert = f.announce(AnnouncementScheme::kNssa, 0);
  SpanningTree tree(0);
  SubscriptionProtocol protocol(*f.world.population, f.graph,
                                SubscriptionOptions{});
  const auto outcome = protocol.subscribe(advert, 30, tree);
  ASSERT_TRUE(outcome.had_advertisement);
  EXPECT_NEAR(outcome.response_time_ms,
              2.0 * f.world.population->latency_ms(30, outcome.attach_point),
              1e-9);
}

TEST(Subscription, ReportAggregates) {
  SubscriptionReport report;
  report.outcomes.push_back(
      {0, true, true, 10.0, 0, 2, 1});
  report.outcomes.push_back(
      {1, false, false, 0.0, 7, 0, kNoPeer});
  report.outcomes.push_back(
      {2, true, false, 30.0, 5, 3, 1});
  EXPECT_NEAR(report.success_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.average_response_time_ms(), 20.0, 1e-12);
  EXPECT_EQ(report.total_messages(), 17u);
}

TEST(Subscription, RendezvousSubscribingIsTrivial) {
  ProtocolFixture f(40, 61);
  const auto advert = f.announce(AnnouncementScheme::kSsaUtility, 7);
  SpanningTree tree(7);
  SubscriptionProtocol protocol(*f.world.population, f.graph,
                                SubscriptionOptions{});
  const auto outcome = protocol.subscribe(advert, 7, tree);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.join_messages + outcome.search_messages, 0u);
  EXPECT_TRUE(tree.is_subscriber(7));
}

}  // namespace
}  // namespace groupcast::core
