// End-to-end robustness acceptance tests: the churn-recovery harness under
// heavy loss and ungraceful churn, determinism of the recovery grid across
// worker counts, and a regression pinning the pre-retry failure mode where
// one dropped JoinAck stranded a subscriber forever.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fault_injection.h"
#include "core/middleware.h"
#include "core/node.h"
#include "metrics/experiment.h"
#include "sim/fault_plan.h"
#include "trace/counters.h"

namespace groupcast {
namespace {

metrics::ScenarioConfig hostile_point() {
  metrics::ScenarioConfig point;
  point.peer_count = 200;
  point.groups = 1;
  point.seed = 4242;
  point.recovery.enabled = true;
  point.recovery.loss_probability = 0.2;
  point.recovery.crash_fraction = 0.3;
  return point;
}

// The ISSUE's acceptance bar: loss = 0.2 plus 30% ungraceful churn, and
// every surviving subscriber must still re-attach with a coherent tree.
TEST(Recovery, SurvivorsReattachUnderHeavyLossAndChurn) {
  const auto result = metrics::run_scenario(hostile_point());
  EXPECT_DOUBLE_EQ(result.reattached_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.invariant_violations, 0.0);
  EXPECT_GT(result.delivery_ratio, 0.0);
  EXPECT_GT(result.subscription_success_rate, 0.9);
  EXPECT_LT(result.epochs_to_converge,
            static_cast<double>(hostile_point().recovery.convergence_epochs));
}

// The same hostile point must produce byte-identical numbers whether the
// grid runs sequentially or on four workers (the harness's determinism
// contract extends to recovery runs).
TEST(Recovery, GridResultsIdenticalAcrossJobCounts) {
  const std::vector<metrics::ScenarioConfig> points{hostile_point()};
  metrics::GridOptions sequential;
  sequential.jobs = 1;
  sequential.repetitions = 2;
  sequential.counters = true;
  metrics::GridOptions parallel = sequential;
  parallel.jobs = 4;

  const auto a = metrics::run_scenario_grid(points, sequential);
  const auto b = metrics::run_scenario_grid(points, parallel);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);

  EXPECT_EQ(a[0].delivery_ratio, b[0].delivery_ratio);
  EXPECT_EQ(a[0].reattached_fraction, b[0].reattached_fraction);
  EXPECT_EQ(a[0].mean_orphan_epochs, b[0].mean_orphan_epochs);
  EXPECT_EQ(a[0].epochs_to_converge, b[0].epochs_to_converge);
  EXPECT_EQ(a[0].control_overhead, b[0].control_overhead);
  EXPECT_EQ(a[0].invariant_violations, b[0].invariant_violations);
  EXPECT_EQ(a[0].subscription_success_rate, b[0].subscription_success_rate);
  EXPECT_EQ(a[0].subscription_messages, b[0].subscription_messages);
  EXPECT_EQ(a[0].avg_tree_nodes, b[0].avg_tree_nodes);
  EXPECT_EQ(a[0].counters.totals, b[0].counters.totals);
  EXPECT_EQ(a[0].counters.per_node, b[0].counters.per_node);
  // The recovery path actually exercised the retry machinery.
  EXPECT_GT(a[0].counters.total(trace::CounterId::kControlRetries), 0u);
  EXPECT_GT(a[0].counters.total(trace::CounterId::kHeartbeats), 0u);
}

// The data-plane acceptance bar: at loss = 0.2 (no churn) the legacy
// fire-and-forget path delivers well under two thirds of the published
// payloads; with NACK/retransmit reliability on the tree edges the same
// point must recover to >= 95%.  Both sides run >= 2 seed repetitions so
// the harness reports the seed-to-seed dispersion of the delivery ratio —
// a single lucky topology must not pass the bar on its own.
TEST(Recovery, ReliableDataPlaneRecoversLossyDelivery) {
  metrics::ScenarioConfig lossy;
  lossy.peer_count = 400;
  lossy.groups = 1;
  lossy.seed = 7100;
  lossy.recovery.enabled = true;
  lossy.recovery.loss_probability = 0.2;
  auto reliable = lossy;
  reliable.recovery.reliable_data = true;

  metrics::GridOptions options;
  options.jobs = 2;
  options.repetitions = 2;
  options.counters = true;
  const std::vector<metrics::ScenarioConfig> points{lossy, reliable};
  const auto results = metrics::run_scenario_grid(points, options);
  ASSERT_EQ(results.size(), 2u);
  const auto& off = results[0];
  const auto& on = results[1];

  EXPECT_LT(off.delivery_ratio, 0.65);
  EXPECT_GE(on.delivery_ratio, 0.95);
  EXPECT_GT(on.counters.total(trace::CounterId::kNacksSent), 0u);
  EXPECT_GT(on.counters.total(trace::CounterId::kRetransmits), 0u);
  // Dispersion must be reported (not left defaulted) for both variants:
  // at 20% loss independent topologies never agree to the last bit, so a
  // stddev of exactly zero means the repetitions were not folded in.
  EXPECT_GT(off.delivery_ratio_stddev, 0.0);
  EXPECT_GE(on.delivery_ratio_stddev, 0.0);
  EXPECT_LT(on.delivery_ratio_stddev, 0.05);
}

metrics::ScenarioConfig partition_point() {
  metrics::ScenarioConfig point;
  point.peer_count = 300;
  point.groups = 1;
  point.seed = 1;
  point.recovery.enabled = true;
  point.recovery.crash_fraction = 0.1;
  point.recovery.replication = true;
  point.recovery.replicas = 3;
  point.recovery.partition_seconds = 30.0;
  return point;
}

// The partition-heal acceptance bar: a 30 s partition that isolates the
// rendezvous point with a minority of subscribers.  The majority side
// must elect a replica via quorum handoff and keep delivering; the
// minority side keeps its caretaker subtree.  The heal must merge the
// divergent epoch logs with no conflicting records and a coherent tree.
// The run is deterministic, so both sides are pinned at full delivery.
TEST(Recovery, PartitionServesBothSidesAndHealsCleanly) {
  const auto result = metrics::run_scenario(partition_point());
  EXPECT_DOUBLE_EQ(result.partition_majority_delivery, 1.0);
  EXPECT_DOUBLE_EQ(result.partition_minority_delivery, 1.0);
  EXPECT_GE(result.lease_handoffs, 1.0);  // the majority actually elected
  EXPECT_DOUBLE_EQ(result.epoch_conflicts, 0.0);
  EXPECT_DOUBLE_EQ(result.invariant_violations, 0.0);
  EXPECT_DOUBLE_EQ(result.reattached_fraction, 1.0);
}

// The determinism contract extends to the partition-heal sweep: the new
// per-side ratios and lease accounting must be byte-identical whatever
// GridOptions::jobs is.
TEST(Recovery, PartitionGridIdenticalAcrossJobCounts) {
  const std::vector<metrics::ScenarioConfig> points{partition_point()};
  metrics::GridOptions sequential;
  sequential.jobs = 1;
  sequential.repetitions = 2;
  sequential.counters = true;
  metrics::GridOptions parallel = sequential;
  parallel.jobs = 4;

  const auto a = metrics::run_scenario_grid(points, sequential);
  const auto b = metrics::run_scenario_grid(points, parallel);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);

  EXPECT_EQ(a[0].partition_majority_delivery, b[0].partition_majority_delivery);
  EXPECT_EQ(a[0].partition_minority_delivery, b[0].partition_minority_delivery);
  EXPECT_EQ(a[0].lease_handoffs, b[0].lease_handoffs);
  EXPECT_EQ(a[0].epoch_conflicts, b[0].epoch_conflicts);
  EXPECT_EQ(a[0].delivery_ratio, b[0].delivery_ratio);
  EXPECT_EQ(a[0].invariant_violations, b[0].invariant_violations);
  EXPECT_EQ(a[0].counters.totals, b[0].counters.totals);
  EXPECT_EQ(a[0].counters.per_node, b[0].counters.per_node);
  // The leased-leadership machinery actually ran.
  EXPECT_GT(a[0].counters.total(trace::CounterId::kLeaseRenewals), 0u);
  EXPECT_GT(a[0].counters.total(trace::CounterId::kLeaseHandoffs), 0u);
}

// Backup-parent failover is rung 0 of the recovery ladder when
// replication is on: under crash churn at least some orphans must
// re-attach through their pre-arranged backup instead of the slower
// advert-parent / rendezvous / ripple rungs.
TEST(Recovery, BackupParentRungFiresUnderChurn) {
  auto point = hostile_point();
  point.recovery.replication = true;
  metrics::GridOptions options;
  options.jobs = 1;
  options.counters = true;
  const std::vector<metrics::ScenarioConfig> points{point};
  const auto results = metrics::run_scenario_grid(points, options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].counters.total(trace::CounterId::kBackupAttaches), 0u);
  EXPECT_DOUBLE_EQ(results[0].reattached_fraction, 1.0);
  EXPECT_DOUBLE_EQ(results[0].invariant_violations, 0.0);
}

// Deployment driving one subscriber through a total outage of the control
// plane: a burst-loss window with probability 1 swallows the JOIN and its
// ack, exactly the dropped-JoinAck scenario that used to strand the
// subscriber forever.
struct JoinOutageFixture {
  core::GroupCastMiddleware middleware;
  util::Rng rng;
  core::Transport transport;
  std::vector<std::unique_ptr<core::GroupCastNode>> nodes;
  overlay::PeerId rendezvous = overlay::kNoPeer;
  static constexpr core::GroupId kGroup = 1;

  explicit JoinOutageFixture(core::NodeOptions node_options)
      : middleware(small_config()),
        rng(middleware.rng().split()),
        transport(middleware.simulator(), middleware.population(),
                  core::TransportOptions{}, rng) {
    node_options.advertisement = small_config().advertisement;
    for (overlay::PeerId p = 0; p < small_config().peer_count; ++p) {
      nodes.push_back(std::make_unique<core::GroupCastNode>(
          p, transport, middleware.graph(), node_options, rng));
      nodes.back()->start();
    }
    rendezvous = middleware.pick_rendezvous();
    nodes[rendezvous]->create_group(kGroup);
    middleware.simulator().run_until(sim::SimTime::seconds(5.0));
  }

  static core::MiddlewareConfig small_config() {
    core::MiddlewareConfig config;
    config.peer_count = 64;
    config.seed = 5;
    return config;
  }

  overlay::PeerId pick_subscriber() const {
    for (overlay::PeerId p = 0; p < nodes.size(); ++p) {
      if (p != rendezvous && nodes[p]->has_advertisement(kGroup)) return p;
    }
    return overlay::kNoPeer;
  }
};

// Regression: with the legacy single-attempt, no-escalation configuration,
// the outage strands the subscriber — pinned so the old failure mode stays
// visible as the behaviour the retry ladder exists to fix.
TEST(Recovery, SingleAttemptJoinIsStrandedByDroppedJoinAck) {
  core::NodeOptions legacy;
  legacy.retry.max_attempts = 1;
  legacy.escalation = false;
  JoinOutageFixture f(legacy);
  core::FaultInjector injector(sim::FaultPlan::parse("burst@5s-6.5s:1.0"),
                               f.transport);
  const auto subscriber = f.pick_subscriber();
  ASSERT_NE(subscriber, overlay::kNoPeer);
  bool reported = false, success = true;
  f.nodes[subscriber]->on_subscribe_result(
      [&](core::GroupId, bool ok) { reported = true; success = ok; });
  f.nodes[subscriber]->subscribe(JoinOutageFixture::kGroup);
  f.middleware.simulator().run_until(sim::SimTime::seconds(30.0));
  EXPECT_TRUE(reported);
  EXPECT_FALSE(success);
  EXPECT_FALSE(f.nodes[subscriber]->on_tree(JoinOutageFixture::kGroup));
}

// With the default retry policy the same outage only delays the join: the
// backoff pushes a later attempt past the window's end and the subscriber
// lands on the tree.
TEST(Recovery, RetryLadderSurvivesDroppedJoinAck) {
  JoinOutageFixture f(core::NodeOptions{});
  core::FaultInjector injector(sim::FaultPlan::parse("burst@5s-6.5s:1.0"),
                               f.transport);
  const auto subscriber = f.pick_subscriber();
  ASSERT_NE(subscriber, overlay::kNoPeer);
  bool reported = false, success = false;
  f.nodes[subscriber]->on_subscribe_result(
      [&](core::GroupId, bool ok) { reported = true; success = ok; });
  f.nodes[subscriber]->subscribe(JoinOutageFixture::kGroup);
  f.middleware.simulator().run_until(sim::SimTime::seconds(30.0));
  EXPECT_TRUE(reported);
  EXPECT_TRUE(success);
  EXPECT_TRUE(f.nodes[subscriber]->is_subscribed(JoinOutageFixture::kGroup));
  EXPECT_TRUE(f.nodes[subscriber]->on_tree(JoinOutageFixture::kGroup));
}

}  // namespace
}  // namespace groupcast
