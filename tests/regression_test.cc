// Golden-value regression suite.
//
// Everything in GroupCast is deterministic under a seed, so key headline
// numbers are pinned here (with loose tolerances to absorb libm
// last-ulp differences across platforms).  A failure means behaviour
// changed — deliberately or not; update the goldens only after
// confirming the change is intended and EXPERIMENTS.md still holds.
#include <gtest/gtest.h>

#include "core/middleware.h"
#include "core/utility.h"
#include "metrics/esm_metrics.h"
#include "metrics/experiment.h"
#include "metrics/graph_stats.h"

namespace groupcast {
namespace {

TEST(Regression, OverlayConstructionGoldens) {
  core::MiddlewareConfig config;
  config.peer_count = 500;
  config.seed = 7;
  core::GroupCastMiddleware middleware(config);
  // Exact integer goldens: the RNG and join order are fully deterministic.
  // (Re-pinned when the middleware moved to Rng::for_stream(seed, 0) —
  // deployments now draw from a dedicated stream of the seed.)
  EXPECT_EQ(middleware.graph().edge_count(), 4499u);
  EXPECT_EQ(middleware.connectivity_repair_edges(), 0u);
  EXPECT_TRUE(middleware.graph().connectivity().connected);
}

TEST(Regression, ScenarioGoldens) {
  metrics::ScenarioConfig config;
  config.peer_count = 500;
  config.groups = 4;
  config.seed = 12345;
  const auto r = metrics::run_scenario(config);
  // Loose relative tolerances: these guard the protocol logic, not FP
  // round-off.
  EXPECT_NEAR(r.receiving_rate, 0.87, 0.06);
  EXPECT_NEAR(r.subscription_success_rate, 1.0, 0.01);
  EXPECT_NEAR(r.delay_penalty, 1.2, 0.25);
  EXPECT_GT(r.advertisement_messages, 1000);
  EXPECT_LT(r.advertisement_messages, 3000);
}

TEST(Regression, BaselineContrastGoldens) {
  // The headline contrast must never silently collapse: GroupCast beats
  // the random overlay by at least 2x on neighbour proximity and at
  // least 1.5x on delay penalty for this pinned configuration.
  auto measure = [](core::OverlayKind kind) {
    core::MiddlewareConfig config;
    config.peer_count = 600;
    config.seed = 99;
    config.overlay = kind;
    core::GroupCastMiddleware middleware(config);
    const double proximity =
        metrics::neighbor_distance_summary(middleware.population(),
                                           middleware.graph())
            .mean();
    auto group = middleware.establish_random_group(60);
    const auto session = middleware.session(group);
    const auto m = metrics::evaluate_session(middleware.population(),
                                             session,
                                             group.advert.rendezvous);
    return std::pair<double, double>{proximity, m.delay_penalty};
  };
  const auto [gc_prox, gc_delay] = measure(core::OverlayKind::kGroupCast);
  const auto [pl_prox, pl_delay] =
      measure(core::OverlayKind::kRandomPowerLaw);
  EXPECT_LT(gc_prox * 2.0, pl_prox);
  EXPECT_LT(gc_delay * 1.5, pl_delay);
}

TEST(Regression, RngStreamGolden) {
  // The first outputs of the seeded generator are part of the repro
  // contract (all experiment results depend on them).
  util::Rng rng(42);
  EXPECT_EQ(rng(), 1546998764402558742ULL);
  EXPECT_EQ(rng(), 6990951692964543102ULL);
  EXPECT_EQ(rng(), 12544586762248559009ULL);
}

TEST(Regression, Table1ResourceLevelContract) {
  const overlay::CapacityDistribution table1;
  EXPECT_DOUBLE_EQ(table1.resource_level(100.0), 0.65);
  const auto params = core::UtilityParams::from_resource_level(0.65);
  EXPECT_NEAR(params.gamma, 0.8305, 0.001);
  EXPECT_NEAR(params.alpha, 0.35, 1e-12);
  EXPECT_NEAR(params.beta, 0.65, 1e-12);
}

}  // namespace
}  // namespace groupcast
