// Tests for the control-plane retry machinery: per-attempt timeouts,
// capped exponential backoff, jitter bounds, settling, cancellation, and
// deterministic schedules.
#include <gtest/gtest.h>

#include <vector>

#include "core/reliable_exchange.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

RetryPolicy no_jitter_policy() {
  RetryPolicy policy;
  policy.base_timeout = sim::SimTime::seconds(1.0);
  policy.backoff = 2.0;
  policy.max_timeout = sim::SimTime::seconds(8.0);
  policy.jitter = 0.0;
  policy.max_attempts = 3;
  return policy;
}

TEST(ReliableExchange, BackoffDoublesAndCaps) {
  sim::Simulator simulator;
  util::Rng rng(1);
  ReliableExchange exchange(simulator, 0, no_jitter_policy(), rng);
  EXPECT_EQ(exchange.backoff_timeout(0), sim::SimTime::seconds(1.0));
  EXPECT_EQ(exchange.backoff_timeout(1), sim::SimTime::seconds(2.0));
  EXPECT_EQ(exchange.backoff_timeout(2), sim::SimTime::seconds(4.0));
  EXPECT_EQ(exchange.backoff_timeout(3), sim::SimTime::seconds(8.0));
  // Capped at max_timeout from here on.
  EXPECT_EQ(exchange.backoff_timeout(4), sim::SimTime::seconds(8.0));
  EXPECT_EQ(exchange.backoff_timeout(20), sim::SimTime::seconds(8.0));
}

TEST(ReliableExchange, RetriesOnScheduleThenGivesUp) {
  sim::Simulator simulator;
  util::Rng rng(2);
  ReliableExchange exchange(simulator, 0, no_jitter_policy(), rng);
  std::vector<std::pair<std::size_t, sim::SimTime>> sends;
  bool gave_up = false;
  sim::SimTime give_up_at;
  exchange.begin(
      [&](std::size_t attempt) {
        sends.emplace_back(attempt, simulator.now());
      },
      [&] {
        gave_up = true;
        give_up_at = simulator.now();
      });
  simulator.run();
  // Attempt 0 immediately, retries after 1s and 1+2s, give-up at 1+2+4s.
  ASSERT_EQ(sends.size(), 3u);
  EXPECT_EQ(sends[0].first, 0u);
  EXPECT_EQ(sends[0].second, sim::SimTime::zero());
  EXPECT_EQ(sends[1].first, 1u);
  EXPECT_EQ(sends[1].second, sim::SimTime::seconds(1.0));
  EXPECT_EQ(sends[2].first, 2u);
  EXPECT_EQ(sends[2].second, sim::SimTime::seconds(3.0));
  EXPECT_TRUE(gave_up);
  EXPECT_EQ(give_up_at, sim::SimTime::seconds(7.0));
  EXPECT_EQ(exchange.in_flight(), 0u);
}

TEST(ReliableExchange, SettleStopsTheClock) {
  sim::Simulator simulator;
  util::Rng rng(3);
  ReliableExchange exchange(simulator, 0, no_jitter_policy(), rng);
  std::size_t sends = 0;
  bool gave_up = false;
  const auto token =
      exchange.begin([&](std::size_t) { ++sends; }, [&] { gave_up = true; });
  EXPECT_TRUE(exchange.pending(token));
  EXPECT_TRUE(exchange.settle(token));
  EXPECT_FALSE(exchange.pending(token));
  // A second settle (duplicate response) is a no-op.
  EXPECT_FALSE(exchange.settle(token));
  simulator.run();
  EXPECT_EQ(sends, 1u);
  EXPECT_FALSE(gave_up);
}

TEST(ReliableExchange, CancelSuppressesGiveUp) {
  sim::Simulator simulator;
  util::Rng rng(4);
  ReliableExchange exchange(simulator, 0, no_jitter_policy(), rng);
  bool gave_up = false;
  const auto token =
      exchange.begin([](std::size_t) {}, [&] { gave_up = true; });
  exchange.cancel(token);
  simulator.run();
  EXPECT_FALSE(gave_up);
  EXPECT_EQ(exchange.in_flight(), 0u);
}

TEST(ReliableExchange, CancelAllOnShutdown) {
  sim::Simulator simulator;
  util::Rng rng(5);
  ReliableExchange exchange(simulator, 0, no_jitter_policy(), rng);
  bool gave_up = false;
  exchange.begin([](std::size_t) {}, [&] { gave_up = true; });
  exchange.begin([](std::size_t) {}, [&] { gave_up = true; });
  EXPECT_EQ(exchange.in_flight(), 2u);
  exchange.cancel_all();
  EXPECT_EQ(exchange.in_flight(), 0u);
  simulator.run();
  EXPECT_FALSE(gave_up);
}

TEST(ReliableExchange, JitterStretchesWithinBounds) {
  sim::Simulator simulator;
  util::Rng rng(6);
  RetryPolicy policy = no_jitter_policy();
  policy.jitter = 0.5;
  policy.max_attempts = 4;
  ReliableExchange exchange(simulator, 0, policy, rng);
  std::vector<sim::SimTime> at;
  exchange.begin([&](std::size_t) { at.push_back(simulator.now()); },
                 [] {});
  simulator.run();
  ASSERT_EQ(at.size(), 4u);
  for (std::size_t k = 0; k + 1 < at.size(); ++k) {
    const auto gap = at[k + 1] - at[k];
    const auto base = exchange.backoff_timeout(k);
    EXPECT_GE(gap, base) << "attempt " << k;
    EXPECT_LT(gap.as_micros(), base.as_micros() * 3 / 2) << "attempt " << k;
  }
}

TEST(ReliableExchange, ScheduleIsDeterministicPerSeed) {
  auto schedule = [](std::uint64_t seed) {
    sim::Simulator simulator;
    util::Rng rng(seed);
    RetryPolicy policy = no_jitter_policy();
    policy.jitter = 0.3;
    ReliableExchange exchange(simulator, 0, policy, rng);
    std::vector<std::int64_t> at;
    exchange.begin(
        [&](std::size_t) { at.push_back(simulator.now().as_micros()); },
        [] {});
    simulator.run();
    return at;
  };
  EXPECT_EQ(schedule(42), schedule(42));
  EXPECT_NE(schedule(42), schedule(43));
}

TEST(ReliableExchange, IndependentExchangesDoNotInterfere) {
  sim::Simulator simulator;
  util::Rng rng(7);
  ReliableExchange exchange(simulator, 0, no_jitter_policy(), rng);
  std::size_t sends_a = 0, sends_b = 0;
  bool gave_up_b = false;
  const auto a = exchange.begin([&](std::size_t) { ++sends_a; }, [] {});
  exchange.begin([&](std::size_t) { ++sends_b; },
                 [&] { gave_up_b = true; });
  exchange.settle(a);
  simulator.run();
  EXPECT_EQ(sends_a, 1u);
  EXPECT_EQ(sends_b, 3u);
  EXPECT_TRUE(gave_up_b);
}

TEST(ReliableExchange, RejectsNonsensePolicies) {
  sim::Simulator simulator;
  util::Rng rng(8);
  auto make = [&](RetryPolicy policy) {
    ReliableExchange exchange(simulator, 0, policy, rng);
  };
  RetryPolicy policy = no_jitter_policy();
  policy.max_attempts = 0;
  EXPECT_THROW(make(policy), PreconditionError);
  policy = no_jitter_policy();
  policy.backoff = 0.5;
  EXPECT_THROW(make(policy), PreconditionError);
  policy = no_jitter_policy();
  policy.jitter = -0.1;
  EXPECT_THROW(make(policy), PreconditionError);
  policy = no_jitter_policy();
  policy.base_timeout = sim::SimTime::zero();
  EXPECT_THROW(make(policy), PreconditionError);
  policy = no_jitter_policy();
  policy.max_timeout = sim::SimTime::millis(1.0);
  EXPECT_THROW(make(policy), PreconditionError);
}

}  // namespace
}  // namespace groupcast::core
