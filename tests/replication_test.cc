// Tests for backup-parent replication (the Section 6 reliability
// extension) and the new SpanningTree reparent/in_subtree operations.
#include <gtest/gtest.h>

#include "core/middleware.h"
#include "core/replication.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

// ------------------------------------------------ tree surgery primitives

TEST(SpanningTreeSurgery, InSubtreeBasics) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.attach(2, 1);
  tree.attach(3, 0);
  EXPECT_TRUE(tree.in_subtree(2, 1));
  EXPECT_TRUE(tree.in_subtree(1, 1));
  EXPECT_TRUE(tree.in_subtree(2, 0));
  EXPECT_FALSE(tree.in_subtree(3, 1));
  EXPECT_FALSE(tree.in_subtree(1, 2));
}

TEST(SpanningTreeSurgery, ReparentMovesSubtree) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.attach(2, 1);
  tree.attach(3, 2);
  tree.attach(4, 0);
  tree.reparent(2, 4);
  EXPECT_EQ(tree.parent(2), 4u);
  EXPECT_EQ(tree.parent(3), 2u);  // subtree moved intact
  EXPECT_EQ(tree.depth(3), 3u);   // 0 -> 4 -> 2 -> 3
  EXPECT_TRUE(tree.is_consistent());
  EXPECT_TRUE(tree.children(1).empty());
}

TEST(SpanningTreeSurgery, ReparentRejectsCycles) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.attach(2, 1);
  EXPECT_THROW(tree.reparent(1, 2), PreconditionError);  // into own subtree
  EXPECT_THROW(tree.reparent(0, 2), PreconditionError);  // root
  EXPECT_THROW(tree.reparent(1, 9), PreconditionError);  // off tree
}

TEST(SpanningTreeSurgery, ReparentToSameParentIsNoOp) {
  SpanningTree tree(0);
  tree.attach(1, 0);
  tree.reparent(1, 0);
  EXPECT_EQ(tree.parent(1), 0u);
  EXPECT_EQ(tree.children(0).size(), 1u);
  EXPECT_TRUE(tree.is_consistent());
}

// ---------------------------------------------------- replicated failover

struct ReplicationFixture {
  GroupCastMiddleware middleware;
  GroupHandle group;

  explicit ReplicationFixture(std::uint64_t seed = 23)
      : middleware([seed] {
          MiddlewareConfig config;
          config.peer_count = 300;
          config.seed = seed;
          return config;
        }()),
        group(middleware.establish_random_group(60)) {}
};

TEST(Replication, CoverageIsHighOnGroupCastOverlays) {
  ReplicationFixture f;
  ReplicatedTree replicated(f.middleware.population(), f.middleware.graph(),
                            f.group.advert, f.group.tree);
  // Most tree nodes have several advert-holding neighbours.
  EXPECT_GT(replicated.coverage(), 0.6);
}

TEST(Replication, BackupDiffersFromPrimaryAndIsNeighbour) {
  ReplicationFixture f(29);
  ReplicatedTree replicated(f.middleware.population(), f.middleware.graph(),
                            f.group.advert, f.group.tree);
  for (const auto node : f.group.tree.nodes()) {
    if (node == f.group.tree.root()) continue;
    const auto backup = replicated.backup_parent(node);
    if (!backup) continue;
    EXPECT_NE(*backup, f.group.tree.parent(node));
    EXPECT_TRUE(f.middleware.graph().connected(node, *backup));
    EXPECT_TRUE(f.group.advert.received(*backup));
  }
}

TEST(Replication, FailoverKeepsTreeConsistent) {
  ReplicationFixture f(31);
  ReplicatedTree replicated(f.middleware.population(), f.middleware.graph(),
                            f.group.advert, f.group.tree);
  // Fail the relay with the most children.
  PeerId victim = overlay::kNoPeer;
  std::size_t most = 0;
  for (const auto node : f.group.tree.nodes()) {
    if (node == f.group.tree.root()) continue;
    if (f.group.tree.children(node).size() >= most) {
      most = f.group.tree.children(node).size();
      victim = node;
    }
  }
  ASSERT_NE(victim, overlay::kNoPeer);
  const auto report = replicated.failover(victim);
  EXPECT_TRUE(f.group.tree.is_consistent());
  EXPECT_FALSE(f.group.tree.contains(victim));
  EXPECT_EQ(report.recovered_subscribers + report.lost_subscribers,
            report.orphaned_subscribers);
  EXPECT_EQ(report.failover_messages, report.switched_subtrees);
}

TEST(Replication, SimulateMatchesApply) {
  ReplicationFixture f(37);
  ReplicatedTree replicated(f.middleware.population(), f.middleware.graph(),
                            f.group.advert, f.group.tree);
  for (const auto node : f.group.tree.nodes()) {
    if (node == f.group.tree.root()) continue;
    if (f.group.tree.children(node).empty()) continue;
    const auto simulated = replicated.simulate_failover(node);
    const auto subscribers_before = f.group.tree.subscriber_count();
    const bool victim_subscribed = f.group.tree.is_subscriber(node);
    const auto applied = replicated.failover(node);
    EXPECT_EQ(simulated.recovered_subscribers, applied.recovered_subscribers);
    EXPECT_EQ(simulated.switched_subtrees, applied.switched_subtrees);
    EXPECT_EQ(simulated.lost_subscribers, applied.lost_subscribers);
    // Subscribers actually removed = lost + the crashed peer itself.
    const auto removed = subscribers_before - f.group.tree.subscriber_count();
    EXPECT_EQ(removed,
              applied.lost_subscribers + (victim_subscribed ? 1u : 0u));
    break;  // one application per fixture: the tree has changed
  }
}

TEST(Replication, RecoveryBeatsUnreplicatedRepairOnMessages) {
  // Instant failover costs one message per switched subtree; the repair
  // path costs ripple searches + joins.  Compare on the same failure.
  ReplicationFixture f(41);
  // Copy the group for the repair arm.
  auto repair_group = f.group;
  // Victim: deepest relay with children.
  PeerId victim = overlay::kNoPeer;
  std::size_t best_depth = 0;
  for (const auto node : f.group.tree.nodes()) {
    if (node == f.group.tree.root()) continue;
    if (f.group.tree.children(node).empty()) continue;
    const auto d = f.group.tree.depth(node);
    if (d >= best_depth) {
      best_depth = d;
      victim = node;
    }
  }
  ASSERT_NE(victim, overlay::kNoPeer);

  ReplicatedTree replicated(f.middleware.population(), f.middleware.graph(),
                            f.group.advert, f.group.tree);
  const auto fast = replicated.failover(victim);

  const auto before = repair_group.stats.subscription_messages();
  const auto slow = f.middleware.repair_after_failure(repair_group, victim);
  const auto repair_messages =
      repair_group.stats.subscription_messages() - before;

  if (fast.switched_subtrees > 0 && slow.orphaned_subscribers > 0) {
    // Per recovered subscriber, failover must not be more expensive.
    const double fast_cost =
        static_cast<double>(fast.failover_messages) /
        std::max<std::size_t>(1, fast.recovered_subscribers);
    const double slow_cost =
        static_cast<double>(repair_messages) /
        std::max<std::size_t>(1, slow.resubscribed);
    EXPECT_LE(fast_cost, slow_cost + 1e-9);
  }
}

TEST(Replication, RejectsRootFailure) {
  ReplicationFixture f(43);
  ReplicatedTree replicated(f.middleware.population(), f.middleware.graph(),
                            f.group.advert, f.group.tree);
  EXPECT_THROW(replicated.failover(f.group.tree.root()), PreconditionError);
}

TEST(Replication, CascadingFailuresKeepTreeConsistent) {
  // Fail relays one after another, always picking the busiest surviving
  // relay — including backups that just absorbed an orphaned subtree.
  // Every intermediate tree must stay structurally consistent, and no
  // failed peer may linger on it.
  ReplicationFixture f(47);
  ReplicatedTree replicated(f.middleware.population(), f.middleware.graph(),
                            f.group.advert, f.group.tree);
  std::vector<PeerId> failed;
  for (int wave = 0; wave < 5; ++wave) {
    PeerId victim = overlay::kNoPeer;
    std::size_t most = 0;
    for (const auto node : f.group.tree.nodes()) {
      if (node == f.group.tree.root()) continue;
      if (f.group.tree.children(node).size() >= most) {
        most = f.group.tree.children(node).size();
        victim = node;
      }
    }
    if (victim == overlay::kNoPeer) break;
    const auto report = replicated.failover(victim);
    failed.push_back(victim);
    ASSERT_TRUE(f.group.tree.is_consistent()) << "after wave " << wave;
    for (const auto gone : failed) {
      EXPECT_FALSE(f.group.tree.contains(gone));
    }
    EXPECT_EQ(report.recovered_subscribers + report.lost_subscribers,
              report.orphaned_subscribers);
  }
  EXPECT_EQ(failed.size(), 5u);
}

// ---------------------------------------------------- replica-set hashing

TEST(Replication, ReplicaSetIsDeterministicAndDistinct) {
  for (const std::uint32_t group : {1u, 7u, 999u}) {
    for (const std::size_t population :
         {std::size_t{16}, std::size_t{300}, std::size_t{4096}}) {
      const PeerId primary = group % population;
      const auto a = rendezvous_replicas(group, primary, population, 3);
      const auto b = rendezvous_replicas(group, primary, population, 3);
      EXPECT_EQ(a, b);  // same inputs, same set — on every node
      ASSERT_EQ(a.size(), 3u);
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NE(a[i], primary);
        EXPECT_LT(a[i], population);
        for (std::size_t j = i + 1; j < a.size(); ++j) {
          EXPECT_NE(a[i], a[j]);
        }
      }
    }
  }
}

TEST(Replication, ReplicaSetVariesByGroup) {
  // Different groups must not pile their replicas onto the same peers.
  const auto a = rendezvous_replicas(1, 0, 1000, 3);
  const auto b = rendezvous_replicas(2, 0, 1000, 3);
  EXPECT_NE(a, b);
}

TEST(Replication, ReplicaSetSkipsDepartedPeersUnderLivenessFilter) {
  const auto unfiltered = rendezvous_replicas(7, 0, 300, 3);
  const PeerId dead = unfiltered.front();
  const auto filtered = rendezvous_replicas(
      7, 0, 300, 3, [dead](PeerId p) { return p != dead; });
  ASSERT_EQ(filtered.size(), 3u);
  for (const auto p : filtered) EXPECT_NE(p, dead);
  // Survivors keep their agreed order; only the departed peer is
  // replaced (by the next peer along the same probe sequence).
  EXPECT_EQ(filtered[0], unfiltered[1]);
  EXPECT_EQ(filtered[1], unfiltered[2]);
}

TEST(Replication, ReplicaSetValidatesCount) {
  EXPECT_THROW(rendezvous_replicas(7, 0, 4, 4), PreconditionError);
  EXPECT_THROW(rendezvous_replicas(7, 0, 0, 0), PreconditionError);
  EXPECT_TRUE(rendezvous_replicas(7, 0, 1, 0).empty());
}

}  // namespace
}  // namespace groupcast::core
