// Tests for the unstructured search primitives (flooding + random walks).
#include <gtest/gtest.h>

#include "overlay/search.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::overlay {
namespace {

/// A line overlay 0-1-2-...-(n-1) over a small world population.
struct LineFixture {
  testing::SmallWorld world;
  OverlayGraph graph;

  explicit LineFixture(std::size_t n = 12, std::uint64_t seed = 3)
      : world(n, seed), graph(n) {
    for (PeerId p = 0; p + 1 < n; ++p) {
      graph.add_edge(p, p + 1);
      graph.add_edge(p + 1, p);
    }
  }
};

TEST(FloodSearch, FindsTargetWithinTtl) {
  LineFixture f;
  const auto hit_3 = [](PeerId p) { return p == 3; };
  const auto result =
      flood_search(*f.world.population, f.graph, 0, 3, hit_3);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.hit, 3u);
  EXPECT_GT(result.messages, 0u);
  EXPECT_GT(result.latency_ms, 0.0);
}

TEST(FloodSearch, MissesTargetBeyondTtl) {
  LineFixture f;
  const auto hit_9 = [](PeerId p) { return p == 9; };
  const auto result =
      flood_search(*f.world.population, f.graph, 0, 3, hit_9);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.hit, kNoPeer);
  EXPECT_DOUBLE_EQ(result.latency_ms, 0.0);
}

TEST(FloodSearch, LocalHitIsFree) {
  LineFixture f;
  const auto result = flood_search(*f.world.population, f.graph, 4, 3,
                                   [](PeerId p) { return p == 4; });
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.messages, 0u);
  EXPECT_EQ(result.peers_probed, 1u);
}

TEST(FloodSearch, LatencyIsRoundTripAlongLine) {
  LineFixture f;
  const auto result = flood_search(*f.world.population, f.graph, 0, 2,
                                   [](PeerId p) { return p == 2; });
  ASSERT_TRUE(result.found);
  const double one_way = f.world.population->latency_ms(0, 1) +
                         f.world.population->latency_ms(1, 2);
  EXPECT_NEAR(result.latency_ms, 2.0 * one_way, 1e-9);
}

TEST(FloodSearch, MessageCountOnLineIsExact) {
  // On the line from node 0 with TTL 2 and no hit: level 1 sends 1 msg
  // (0->1); level 2 sends 2 (1->0 dup, 1->2); plus... node 0 forwards only
  // to 1; node 1 forwards to 0 and 2.  Total 3 transmissions.
  LineFixture f;
  const auto result = flood_search(*f.world.population, f.graph, 0, 2,
                                   [](PeerId) { return false; });
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.messages, 3u);
  EXPECT_EQ(result.peers_probed, 3u);  // 0, 1, 2
}

TEST(FloodSearch, ProbesWholeComponentWithLargeTtl) {
  testing::SmallWorld world(40, 7);
  OverlayGraph graph(40);
  // A random connected graph.
  for (PeerId p = 1; p < 40; ++p) {
    const auto q = static_cast<PeerId>(world.rng.uniform_index(p));
    graph.add_edge(p, q);
    graph.add_edge(q, p);
  }
  const auto result = flood_search(*world.population, graph, 0, 40,
                                   [](PeerId) { return false; });
  EXPECT_EQ(result.peers_probed, 40u);
}

TEST(RandomWalk, FindsNearbyTarget) {
  LineFixture f;
  util::Rng rng(5);
  RandomWalkOptions options;
  options.walkers = 4;
  options.max_steps = 30;
  const auto result =
      random_walk_search(*f.world.population, f.graph, 0, options,
                         [](PeerId p) { return p == 5; }, rng);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.hit, 5u);
  EXPECT_GT(result.latency_ms, 0.0);
}

TEST(RandomWalk, RespectsStepBudget) {
  LineFixture f;
  util::Rng rng(7);
  RandomWalkOptions options;
  options.walkers = 2;
  options.max_steps = 3;
  const auto result =
      random_walk_search(*f.world.population, f.graph, 0, options,
                         [](PeerId p) { return p == 11; }, rng);
  EXPECT_FALSE(result.found);
  EXPECT_LE(result.messages, options.walkers * options.max_steps);
}

TEST(RandomWalk, BacktrackAvoidanceWalksStraightOnLine) {
  // With backtrack avoidance, a single walker on a line must march
  // monotonically away from the origin.
  LineFixture f;
  util::Rng rng(9);
  RandomWalkOptions options;
  options.walkers = 1;
  options.max_steps = 11;
  const auto result =
      random_walk_search(*f.world.population, f.graph, 0, options,
                         [](PeerId p) { return p == 11; }, rng);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.messages, 11u + 1u);  // 11 steps + response
}

TEST(RandomWalk, LocalHitIsFree) {
  LineFixture f;
  util::Rng rng(11);
  const auto result =
      random_walk_search(*f.world.population, f.graph, 6,
                         RandomWalkOptions{},
                         [](PeerId p) { return p == 6; }, rng);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.messages, 0u);
}

TEST(RandomWalk, IsolatedOriginFindsNothing) {
  testing::SmallWorld world(8, 13);
  OverlayGraph graph(8);  // no edges
  util::Rng rng(13);
  const auto result =
      random_walk_search(*world.population, graph, 0, RandomWalkOptions{},
                         [](PeerId p) { return p == 5; }, rng);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.messages, 0u);
}

TEST(SearchContracts, RejectBadArguments) {
  LineFixture f;
  util::Rng rng(15);
  EXPECT_THROW(flood_search(*f.world.population, f.graph, 99, 2,
                            [](PeerId) { return false; }),
               PreconditionError);
  EXPECT_THROW(flood_search(*f.world.population, f.graph, 0, 2, nullptr),
               PreconditionError);
  RandomWalkOptions bad;
  bad.walkers = 0;
  EXPECT_THROW(random_walk_search(*f.world.population, f.graph, 0, bad,
                                  [](PeerId) { return false; }, rng),
               PreconditionError);
}

TEST(SearchComparison, FloodCostsMoreMessagesWalkCostsMoreLatency) {
  // The Section 1 claim, as a property over seeds.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    testing::SmallWorld world(80, seed);
    OverlayGraph graph(80);
    util::Rng rng(seed);
    for (PeerId p = 1; p < 80; ++p) {
      const auto q = static_cast<PeerId>(rng.uniform_index(p));
      graph.add_edge(p, q);
      graph.add_edge(q, p);
      if (p > 2) {
        const auto extra = static_cast<PeerId>(rng.uniform_index(p));
        if (extra != q) {
          graph.add_edge(p, extra);
          graph.add_edge(extra, p);
        }
      }
    }
    // Target: a specific far-ish peer.
    const auto predicate = [](PeerId p) { return p == 79; };
    const auto flood =
        flood_search(*world.population, graph, 0, 6, predicate);
    RandomWalkOptions options;
    options.walkers = 2;
    options.max_steps = 200;
    const auto walk = random_walk_search(*world.population, graph, 0,
                                         options, predicate, rng);
    if (flood.found && walk.found) {
      EXPECT_GT(flood.messages, walk.messages / 4)
          << "flooding should not be cheap";
      EXPECT_GE(walk.latency_ms, flood.latency_ms * 0.9)
          << "walks should not be faster than floods";
    }
  }
}

}  // namespace
}  // namespace groupcast::overlay
