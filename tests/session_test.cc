// Tests for group sessions (payload dissemination) and the ESM metrics.
#include <gtest/gtest.h>

#include "core/group_session.h"
#include "metrics/esm_metrics.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

/// Fixture: a small population plus a hand-built spanning tree
///     0 (root)
///     ├── 1
///     │   ├── 3
///     │   └── 4
///     └── 2
/// Subscribers: 2, 3, 4.
struct SessionFixture {
  testing::SmallWorld world;
  SpanningTree tree;

  SessionFixture() : world(8, 3), tree(0) {
    tree.attach(1, 0);
    tree.attach(2, 0);
    tree.attach(3, 1);
    tree.attach(4, 1);
    tree.mark_subscriber(2);
    tree.mark_subscriber(3);
    tree.mark_subscriber(4);
  }
};

TEST(GroupSession, DelaysArePathSumsFromRoot) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  const auto result = session.disseminate(0);
  const auto& pop = *f.world.population;
  EXPECT_NEAR(result.subscriber_delay_ms.at(2), pop.latency_ms(0, 2), 1e-9);
  EXPECT_NEAR(result.subscriber_delay_ms.at(3),
              pop.latency_ms(0, 1) + pop.latency_ms(1, 3), 1e-9);
  EXPECT_NEAR(result.subscriber_delay_ms.at(4),
              pop.latency_ms(0, 1) + pop.latency_ms(1, 4), 1e-9);
}

TEST(GroupSession, PayloadMessagesEqualTreeEdges) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  const auto result = session.disseminate(0);
  EXPECT_EQ(result.payload_messages, f.tree.node_count() - 1);
}

TEST(GroupSession, DisseminationFromLeafTravelsUpAndDown) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  const auto result = session.disseminate(3);
  const auto& pop = *f.world.population;
  // Delay to 4: up to 1, down to 4.
  EXPECT_NEAR(result.subscriber_delay_ms.at(4),
              pop.latency_ms(3, 1) + pop.latency_ms(1, 4), 1e-9);
  // Delay to 2: 3 -> 1 -> 0 -> 2.
  EXPECT_NEAR(result.subscriber_delay_ms.at(2),
              pop.latency_ms(3, 1) + pop.latency_ms(1, 0) +
                  pop.latency_ms(0, 2),
              1e-9);
  // Source is not its own listener.
  EXPECT_FALSE(result.subscriber_delay_ms.contains(3));
  // Every edge still used exactly once.
  EXPECT_EQ(result.payload_messages, f.tree.node_count() - 1);
}

TEST(GroupSession, FanoutCountsForwardedCopies) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  const auto from_root = session.disseminate(0);
  EXPECT_EQ(from_root.forward_fanout.at(0), 2u);  // to 1 and 2
  EXPECT_EQ(from_root.forward_fanout.at(1), 2u);  // to 3 and 4
  EXPECT_FALSE(from_root.forward_fanout.contains(3));  // leaf
  const auto from_leaf = session.disseminate(3);
  EXPECT_EQ(from_leaf.forward_fanout.at(3), 1u);  // up to 1
  EXPECT_EQ(from_leaf.forward_fanout.at(1), 2u);  // to 4 and up to 0
}

TEST(GroupSession, IpFootprintCountsAccessAndRouterLinks) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  const auto result = session.disseminate(0);
  // Each overlay hop contributes 2 access-link crossings plus its router
  // path; totals must be consistent.
  std::size_t router_total = 0;
  for (const auto& [link, load] : result.router_link_load) {
    router_total += load;
  }
  std::size_t access_total = 0;
  for (const auto& [peer, load] : result.access_link_load) {
    access_total += load;
  }
  EXPECT_EQ(access_total, 2 * result.payload_messages);
  EXPECT_EQ(result.ip_messages, router_total + access_total);
}

TEST(GroupSession, RequiresSourceOnTree) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  EXPECT_THROW(session.disseminate(7), PreconditionError);
}

TEST(GroupSession, IpMulticastBaselineSaneAndCheaper) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  const auto esm = session.disseminate(0);
  const auto baseline = session.ip_multicast_baseline(0);
  EXPECT_GT(baseline.average_delay_ms, 0.0);
  EXPECT_GT(baseline.ip_messages, 0u);
  // IP multicast is a lower bound on both metrics.
  EXPECT_LE(baseline.average_delay_ms, esm.average_delay_ms + 1e-9);
  EXPECT_LE(baseline.ip_messages, esm.ip_messages);
}

TEST(GroupSession, BaselineWithNoReceiversIsEmpty) {
  testing::SmallWorld world(4, 5);
  SpanningTree tree(0);
  const GroupSession session(*world.population, tree);
  const auto baseline = session.ip_multicast_baseline(0);
  EXPECT_EQ(baseline.ip_messages, 0u);
  EXPECT_DOUBLE_EQ(baseline.average_delay_ms, 0.0);
}

// ------------------------------------------------------------ ESM metrics

TEST(EsmMetrics, NodeStressAveragesFanout) {
  DisseminationResult result;
  result.forward_fanout = {{0, 2}, {1, 4}};
  EXPECT_DOUBLE_EQ(metrics::node_stress(result), 3.0);
  DisseminationResult empty;
  EXPECT_DOUBLE_EQ(metrics::node_stress(empty), 0.0);
}

TEST(EsmMetrics, OverloadIndexDefinition) {
  SessionFixture f;
  DisseminationResult result;
  // Give node 1 a fanout far above any capacity class and keep others idle.
  result.forward_fanout = {{1, 20000}};
  std::size_t overloaded = 0;
  const double index = metrics::overload_index(*f.world.population, f.tree,
                                               result, &overloaded);
  EXPECT_EQ(overloaded, 1u);
  const double capacity = f.world.population->info(1).capacity;
  // fraction (1/5) * excess (20000 - capacity)
  EXPECT_NEAR(index, (20000.0 - capacity) / 5.0, 1e-9);
}

TEST(EsmMetrics, NoOverloadGivesZeroIndex) {
  SessionFixture f;
  DisseminationResult result;
  result.forward_fanout = {{0, 1}};  // load 1 <= every capacity class
  EXPECT_DOUBLE_EQ(
      metrics::overload_index(*f.world.population, f.tree, result), 0.0);
}

TEST(EsmMetrics, EvaluateSessionProducesConsistentBundle) {
  SessionFixture f;
  const GroupSession session(*f.world.population, f.tree);
  const auto m = metrics::evaluate_session(*f.world.population, session, 0);
  EXPECT_GE(m.delay_penalty, 1.0 - 1e-9);
  EXPECT_GE(m.link_stress, 1.0 - 1e-9);
  EXPECT_GT(m.node_stress, 0.0);
  EXPECT_EQ(m.tree_nodes, 5u);
  EXPECT_NEAR(m.delay_penalty, m.esm_avg_delay_ms / m.ip_avg_delay_ms, 1e-9);
}

}  // namespace
}  // namespace groupcast::core
