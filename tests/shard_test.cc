// The sharded event kernel (sim/shard_set.h) and its determinism
// contract: a recovery scenario must produce byte-identical metrics,
// counters and histograms at every shard count >= 2, cross-shard delivery
// order must not depend on which epoch barrier merged a message, and the
// shard-count preconditions must reject nonsense loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "core/transport.h"
#include "metrics/experiment.h"
#include "sim/shard_set.h"
#include "test_helpers.h"
#include "trace/flight_recorder.h"
#include "util/require.h"
#include "util/rng.h"

namespace groupcast {
namespace {

/// A client with no cross-shard traffic: lets ShardSet be unit-tested as
/// a bare multi-wheel scheduler.
class NullClient : public sim::ShardSet::Client {
 public:
  void merge_inbound(std::size_t) override {}
  std::int64_t next_arrival_us(std::size_t) override { return -1; }
  std::size_t deliver_arrivals_at(std::size_t, std::int64_t) override {
    return 0;
  }
};

TEST(ShardSet, RunsTimersOnEveryShardAndCountsEvents) {
  sim::ShardSet shards(3, /*lookahead_us=*/500);
  NullClient client;
  shards.set_client(&client);
  std::atomic<int> fired{0};
  for (std::size_t i = 0; i < shards.num_shards(); ++i) {
    for (int k = 1; k <= 4; ++k) {
      shards.shard(i).schedule_at(sim::SimTime::millis(k),
                                  [&fired] { ++fired; });
    }
  }
  shards.run_until(sim::SimTime::millis(10));
  EXPECT_EQ(fired.load(), 12);
  EXPECT_EQ(shards.events_fired(), 12u);
  EXPECT_EQ(shards.now(), sim::SimTime::millis(10));
  const auto per_shard = shards.events_per_shard();
  ASSERT_EQ(per_shard.size(), 3u);
  EXPECT_EQ(per_shard[0] + per_shard[1] + per_shard[2], 12u);
  // Every shard clock fast-forwards to the deadline even when idle.
  for (std::size_t i = 0; i < shards.num_shards(); ++i) {
    EXPECT_EQ(shards.shard(i).now(), sim::SimTime::millis(10));
  }
}

TEST(ShardSet, ExecRunsOnDistinctWorkerThreads) {
  sim::ShardSet shards(4, /*lookahead_us=*/500);
  std::vector<std::thread::id> ids(shards.num_shards());
  shards.exec_on_shards(
      [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  std::set<std::thread::id> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(unique.count(std::this_thread::get_id()), 0u);
  // A second exec lands on the same workers (threads are persistent).
  std::vector<std::thread::id> again(shards.num_shards());
  shards.exec_on_shards(
      [&](std::size_t i) { again[i] = std::this_thread::get_id(); });
  EXPECT_EQ(ids, again);
}

/// One delivery observed by a receiver, in observation order.
using Delivery = std::tuple<overlay::PeerId, overlay::PeerId, std::uint64_t,
                            std::int64_t>;

/// Drives a burst of cross-peer DataMsg traffic through a sharded
/// transport and returns every delivery in per-receiver observation
/// order.  Sends are issued from *inside* shard events so they traverse
/// the real outbox / merge / arrival-queue machinery.
std::vector<Delivery> sharded_burst(std::size_t num_shards) {
  testing::SmallWorld world(/*peers=*/48, /*seed=*/7);
  sim::ShardSet shards(num_shards, /*lookahead_us=*/300);
  core::TransportOptions options;
  core::Transport transport(shards, *world.population, options, world.rng);

  std::vector<std::vector<Delivery>> by_receiver(world.population->size());
  for (overlay::PeerId p = 0; p < world.population->size(); ++p) {
    transport.register_node(p, [&by_receiver, p](const core::Envelope& env) {
      const auto& data = std::get<core::DataMsg>(env.body);
      by_receiver[p].push_back(
          {env.from, env.to, data.payload_id, 0});
    });
  }
  // Every peer fires three staggered bursts, each fanning out to a fixed
  // window of other peers — plenty of same-instant cross-shard arrivals.
  for (overlay::PeerId p = 0; p < world.population->size(); ++p) {
    for (int burst = 0; burst < 3; ++burst) {
      transport.simulator_for(p).schedule_at(
          sim::SimTime::millis(1 + burst * 2), [&transport, p, burst] {
            for (overlay::PeerId d = 1; d <= 5; ++d) {
              const auto to = static_cast<overlay::PeerId>((p + d) % 48);
              core::DataMsg msg;
              msg.origin = p;
              msg.payload_id =
                  static_cast<std::uint64_t>(burst) * 1000 + p * 10 + d;
              transport.send(p, to, msg);
            }
          });
    }
  }
  // Transit-stub paths reach hundreds of ms; leave room for every tail.
  shards.run_until(sim::SimTime::seconds(2));
  std::vector<Delivery> flat;
  for (const auto& one : by_receiver) {
    flat.insert(flat.end(), one.begin(), one.end());
  }
  EXPECT_EQ(flat.size(), 48u * 3u * 5u);
  return flat;
}

// The ordering golden: the per-receiver delivery sequence (who, what,
// in which order) is a pure function of the traffic, not of the shard
// count — the arrival queues order by (arrival, src, send counter)
// regardless of which epoch barrier merged each record.
TEST(ShardSet, CrossShardDeliveryOrderInvariantAcrossShardCounts) {
  const auto two = sharded_burst(2);
  const auto four = sharded_burst(4);
  const auto seven = sharded_burst(7);
  EXPECT_EQ(two, four);
  EXPECT_EQ(two, seven);
}

metrics::ScenarioConfig shard_point(std::size_t shards) {
  metrics::ScenarioConfig point;
  point.peer_count = 200;
  point.groups = 1;
  point.seed = 4242;
  point.shards = shards;
  point.recovery.enabled = true;
  point.recovery.loss_probability = 0.2;
  point.recovery.crash_fraction = 0.3;
  return point;
}

// The tentpole's determinism contract: every metric field, the counter
// totals and the histogram bins of a hostile recovery run are
// byte-identical at shard counts 2, 4 and 8.
TEST(ShardDeterminism, RecoveryResultsIdenticalAcrossShardCounts) {
  metrics::GridOptions options;
  options.repetitions = 1;
  options.counters = true;
  options.histograms = true;

  std::vector<metrics::ScenarioResult> results;
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const std::vector<metrics::ScenarioConfig> points{shard_point(shards)};
    auto reduced = metrics::run_scenario_grid(points, options);
    ASSERT_EQ(reduced.size(), 1u);
    results.push_back(std::move(reduced.front()));
  }
  const auto& base = results.front();
  ASSERT_EQ(base.events_per_shard.size(), 2u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto& other = results[i];
    EXPECT_EQ(base.delivery_ratio, other.delivery_ratio);
    EXPECT_EQ(base.reattached_fraction, other.reattached_fraction);
    EXPECT_EQ(base.mean_orphan_epochs, other.mean_orphan_epochs);
    EXPECT_EQ(base.epochs_to_converge, other.epochs_to_converge);
    EXPECT_EQ(base.control_overhead, other.control_overhead);
    EXPECT_EQ(base.invariant_violations, other.invariant_violations);
    EXPECT_EQ(base.subscription_success_rate,
              other.subscription_success_rate);
    EXPECT_EQ(base.subscription_messages, other.subscription_messages);
    EXPECT_EQ(base.avg_tree_nodes, other.avg_tree_nodes);
    EXPECT_EQ(base.counters.totals, other.counters.totals);
    EXPECT_EQ(base.counters.per_node, other.counters.per_node);
    EXPECT_EQ(base.histograms.data, other.histograms.data);
    // The total workload is invariant; only its split across shards moves.
    EXPECT_EQ(base.events_fired, other.events_fired);
    EXPECT_EQ(other.events_per_shard.size(), i == 1 ? 4u : 8u);
    std::uint64_t sum = 0;
    for (const auto events : other.events_per_shard) sum += events;
    EXPECT_EQ(sum, other.events_fired);
  }
  // The sharded run exercised the same machinery as the single wheel.
  EXPECT_GT(base.counters.total(trace::CounterId::kControlRetries), 0u);
  EXPECT_GT(base.counters.total(trace::CounterId::kHeartbeats), 0u);
  EXPECT_DOUBLE_EQ(base.reattached_fraction, 1.0);
  EXPECT_DOUBLE_EQ(base.invariant_violations, 0.0);
}

TEST(ShardDeterminism, ShardCountValidation) {
  auto zero = shard_point(0);
  EXPECT_THROW(metrics::run_scenario(zero), PreconditionError);
  auto oversubscribed = shard_point(4);
  oversubscribed.peer_count = 3;
  EXPECT_THROW(metrics::run_scenario(oversubscribed), PreconditionError);
  metrics::ScenarioConfig engine_level;
  engine_level.peer_count = 64;
  engine_level.groups = 1;
  engine_level.shards = 2;
  EXPECT_THROW(metrics::run_scenario(engine_level), PreconditionError);
}

TEST(ShardDeterminism, FlightRecorderRefusesShardedRuns) {
  trace::FlightRecorder recorder;
  recorder.enable();
  trace::ScopedFlightRecorder guard(recorder);
  auto point = shard_point(2);
  EXPECT_THROW(metrics::run_scenario(point), PreconditionError);
}

}  // namespace
}  // namespace groupcast
