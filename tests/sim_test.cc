// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "util/require.h"
#include "util/rng.h"

namespace groupcast::sim {
namespace {

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(SimTime::millis(2.5).as_micros(), 2500);
  EXPECT_DOUBLE_EQ(SimTime::seconds(1.5).as_millis(), 1500.0);
  EXPECT_DOUBLE_EQ(SimTime::micros(250).as_seconds(), 0.00025);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::millis(3), b = SimTime::millis(2);
  EXPECT_EQ((a + b).as_micros(), 5000);
  EXPECT_EQ((a - b).as_micros(), 1000);
  EXPECT_EQ((b * 4).as_micros(), 8000);
  auto c = a;
  c += b;
  EXPECT_EQ(c, SimTime::millis(5));
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ(SimTime::zero(), SimTime::micros(0));
  EXPECT_GT(SimTime::seconds(1), SimTime::millis(999));
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(SimTime::millis(30), [&] { order.push_back(3); });
  simulator.schedule(SimTime::millis(10), [&] { order.push_back(1); });
  simulator.schedule(SimTime::millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(simulator.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoTieBreakAtSameInstant) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator simulator;
  SimTime seen = SimTime::zero();
  simulator.schedule(SimTime::millis(42), [&] { seen = simulator.now(); });
  simulator.run();
  EXPECT_EQ(seen, SimTime::millis(42));
  EXPECT_EQ(simulator.now(), SimTime::millis(42));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth > 0) {
      simulator.schedule(SimTime::millis(1),
                         [&chain, depth] { chain(depth - 1); });
    }
  };
  simulator.schedule(SimTime::zero(), [&chain] { chain(4); });
  EXPECT_EQ(simulator.run(), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(simulator.now(), SimTime::millis(4));
}

TEST(Simulator, RelativeDelayIsFromCurrentTime) {
  Simulator simulator;
  SimTime inner_fired = SimTime::zero();
  simulator.schedule(SimTime::millis(10), [&] {
    simulator.schedule(SimTime::millis(5),
                       [&] { inner_fired = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(inner_fired, SimTime::millis(15));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(SimTime::millis(10), [&] { ++fired; });
  simulator.schedule(SimTime::millis(20), [&] { ++fired; });
  simulator.schedule(SimTime::millis(30), [&] { ++fired; });
  EXPECT_EQ(simulator.run_until(SimTime::millis(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.pending(), 1u);
  EXPECT_EQ(simulator.now(), SimTime::millis(20));
  // The rest still runs afterwards.
  EXPECT_EQ(simulator.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulator simulator;
  simulator.run_until(SimTime::seconds(5));
  EXPECT_EQ(simulator.now(), SimTime::seconds(5));
}

TEST(Simulator, ClearDropsPendingEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(SimTime::millis(1), [&] { ++fired; });
  simulator.clear();
  EXPECT_EQ(simulator.pending(), 0u);
  EXPECT_EQ(simulator.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RejectsPastAndNullActions) {
  Simulator simulator;
  EXPECT_THROW(simulator.schedule(SimTime::millis(-1), [] {}),
               PreconditionError);
  EXPECT_THROW(simulator.schedule_at(SimTime::millis(1), nullptr),
               PreconditionError);
  simulator.schedule(SimTime::millis(10), [&] {
    // Scheduling before `now` from within an event must throw too.
    EXPECT_THROW(simulator.schedule_at(SimTime::millis(5), [] {}),
                 PreconditionError);
  });
  simulator.run();
}

TEST(Simulator, ManyEventsStaySorted) {
  Simulator simulator;
  util::Rng rng(5);
  SimTime last = SimTime::zero();
  bool monotonic = true;
  for (int i = 0; i < 5000; ++i) {
    simulator.schedule(SimTime::micros(
                           static_cast<std::int64_t>(rng.uniform_index(1000000))),
                       [&] {
                         if (simulator.now() < last) monotonic = false;
                         last = simulator.now();
                       });
  }
  EXPECT_EQ(simulator.run(), 5000u);
  EXPECT_TRUE(monotonic);
}

}  // namespace
}  // namespace groupcast::sim
