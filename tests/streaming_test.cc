// Acceptance tests for the live-streaming workload harness: option
// validation (bad configs must be rejected loudly, not silently ignored),
// the reliable data plane's miss-ratio bar under loss, the flash crowd's
// attach guarantee, and the determinism contract of multi-source grids
// across worker counts and shard counts.
#include <gtest/gtest.h>

#include <vector>

#include "metrics/experiment.h"
#include "trace/counters.h"
#include "util/require.h"

namespace groupcast {
namespace {

metrics::ScenarioConfig streaming_point() {
  metrics::ScenarioConfig point;
  point.peer_count = 200;
  point.groups = 1;
  point.group_size = 40;
  point.seed = 4311;
  point.streaming.enabled = true;
  point.streaming.chunks = 20;
  return point;
}

TEST(Streaming, ValidationRejectsBadOptionsLoudly) {
  const auto rejects = [](auto&& mutate) {
    auto point = streaming_point();
    mutate(point.streaming);
    EXPECT_THROW(metrics::run_scenario(point), PreconditionError);
  };
  rejects([](metrics::StreamingOptions& s) { s.loss_probability = 1.5; });
  rejects([](metrics::StreamingOptions& s) { s.loss_probability = -0.1; });
  rejects([](metrics::StreamingOptions& s) { s.chunks = 0; });
  rejects([](metrics::StreamingOptions& s) { s.chunk_interval_seconds = 0; });
  rejects([](metrics::StreamingOptions& s) { s.chunk_bytes = 0; });
  rejects([](metrics::StreamingOptions& s) { s.chunk_bytes = 17u << 20; });
  rejects([](metrics::StreamingOptions& s) { s.deadline_seconds = 0; });
  rejects([](metrics::StreamingOptions& s) { s.uplink_kbps = -1; });
  rejects([](metrics::StreamingOptions& s) { s.downlink_kbps = -1; });
  rejects([](metrics::StreamingOptions& s) { s.flow_control = true; });
  rejects([](metrics::StreamingOptions& s) { s.sources.publishers = 0; });
  rejects([](metrics::StreamingOptions& s) { s.flash_crowd_seconds = 0; });
  rejects([](metrics::StreamingOptions& s) { s.heartbeat_seconds = 0; });
  rejects([](metrics::StreamingOptions& s) { s.heartbeat_misses = 0; });
  rejects([](metrics::StreamingOptions& s) { s.epoch_seconds = 0; });
  rejects([](metrics::StreamingOptions& s) { s.convergence_epochs = 0; });
}

TEST(Streaming, MutuallyExclusiveWithRecoveryHarness) {
  auto point = streaming_point();
  point.recovery.enabled = true;
  EXPECT_THROW(metrics::run_scenario(point), PreconditionError);
}

// The tentpole acceptance bar: at 5% steady-state loss with the
// NACK/retransmit data plane on the tree edges, viewers must still play
// at least 95% of their eligible chunks by the deadline.
TEST(Streaming, MissRatioUnderFivePercentAtFivePercentLossReliable) {
  auto point = streaming_point();
  point.streaming.loss_probability = 0.05;
  point.streaming.reliable_data = true;
  const auto result = metrics::run_scenario(point);
  EXPECT_LE(result.chunk_miss_ratio, 0.05);
  EXPECT_GT(result.chunks_played_per_viewer, 0.0);
  EXPECT_GT(result.startup_delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.subscription_success_rate, 1.0);
}

// Without reliability the same loss rate visibly starves playback — the
// comparison the workload family exists to demonstrate.
TEST(Streaming, ReliabilityWinsBackLostChunks) {
  auto lossy = streaming_point();
  lossy.streaming.loss_probability = 0.05;
  const auto fire_and_forget = metrics::run_scenario(lossy);
  lossy.streaming.reliable_data = true;
  const auto reliable = metrics::run_scenario(lossy);
  EXPECT_GT(fire_and_forget.chunk_miss_ratio, reliable.chunk_miss_ratio);
  EXPECT_GT(fire_and_forget.chunk_miss_ratio, 0.05);
}

// A flash crowd joining the warm tree must fully attach and start
// playing from its join instant (back-catalog chunks are not scored).
TEST(Streaming, FlashCrowdAttachesAndPlays) {
  auto point = streaming_point();
  point.streaming.reliable_data = true;
  point.streaming.flash_crowd_joins = 30;
  const auto result = metrics::run_scenario(point);
  EXPECT_DOUBLE_EQ(result.flash_attach_fraction, 1.0);
  EXPECT_LE(result.chunk_miss_ratio, 0.05);
}

// Bandwidth caps pace every access link; the capped run must still meet
// the deadline at streaming rates, just with more queueing in front of
// each hop (startup can only grow).
TEST(Streaming, BandwidthCapsAddDelayWithoutMisses) {
  auto point = streaming_point();
  const auto uncapped = metrics::run_scenario(point);
  point.streaming.uplink_kbps = 20000;
  point.streaming.downlink_kbps = 20000;
  const auto capped = metrics::run_scenario(point);
  EXPECT_DOUBLE_EQ(capped.chunk_miss_ratio, 0.0);
  EXPECT_GE(capped.startup_delay_ms, uncapped.startup_delay_ms);
}

std::vector<metrics::ScenarioConfig> multi_source_points() {
  std::vector<metrics::ScenarioConfig> points;
  for (const auto mode : {metrics::MultiSourceOptions::Mode::kSharedTree,
                          metrics::MultiSourceOptions::Mode::kPerSourceTrees}) {
    auto point = streaming_point();
    point.streaming.reliable_data = true;
    point.streaming.sources.publishers = 2;
    point.streaming.sources.mode = mode;
    points.push_back(point);
  }
  return points;
}

// Multi-source grids must produce byte-identical numbers — including the
// merged counter totals — whether the grid runs sequentially or on four
// workers (the harness's determinism contract).
TEST(Streaming, MultiSourceGridIdenticalAcrossJobCounts) {
  const auto points = multi_source_points();
  metrics::GridOptions sequential;
  sequential.jobs = 1;
  sequential.repetitions = 2;
  sequential.counters = true;
  metrics::GridOptions parallel = sequential;
  parallel.jobs = 4;
  const auto a = metrics::run_scenario_grid(points, sequential);
  const auto b = metrics::run_scenario_grid(points, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].chunk_miss_ratio, b[i].chunk_miss_ratio);
    EXPECT_DOUBLE_EQ(a[i].chunk_miss_ratio_stddev,
                     b[i].chunk_miss_ratio_stddev);
    EXPECT_DOUBLE_EQ(a[i].startup_delay_ms, b[i].startup_delay_ms);
    EXPECT_DOUBLE_EQ(a[i].rebuffer_events, b[i].rebuffer_events);
    EXPECT_DOUBLE_EQ(a[i].chunks_played_per_viewer,
                     b[i].chunks_played_per_viewer);
    EXPECT_DOUBLE_EQ(a[i].subscription_messages, b[i].subscription_messages);
    for (const auto id :
         {trace::CounterId::kChunksPublished,
          trace::CounterId::kChunksDelivered, trace::CounterId::kChunksLate,
          trace::CounterId::kChunksMissed, trace::CounterId::kRebufferEvents,
          trace::CounterId::kMessagesSent}) {
      EXPECT_EQ(a[i].counters.total(id), b[i].counters.total(id))
          << "counter " << trace::to_string(id) << " diverged in cell " << i;
    }
  }
  // Both layouts must actually stream: two publishers' worth of chunks.
  for (const auto& r : a) {
    EXPECT_EQ(r.counters.total(trace::CounterId::kChunksPublished),
              2u * 20u * 2u);  // publishers x chunks x repetitions
  }
}

// The sharded event kernel must agree with itself at every shard count
// >= 2 (the single wheel is a different, also-deterministic trajectory).
TEST(Streaming, ShardCountInvariantResults) {
  auto point = streaming_point();
  point.streaming.reliable_data = true;
  point.streaming.loss_probability = 0.05;
  point.streaming.sources.publishers = 2;
  point.shards = 2;
  const auto two = metrics::run_scenario(point);
  point.shards = 4;
  const auto four = metrics::run_scenario(point);
  EXPECT_DOUBLE_EQ(two.chunk_miss_ratio, four.chunk_miss_ratio);
  EXPECT_DOUBLE_EQ(two.startup_delay_ms, four.startup_delay_ms);
  EXPECT_DOUBLE_EQ(two.rebuffer_events, four.rebuffer_events);
  EXPECT_DOUBLE_EQ(two.chunks_played_per_viewer,
                   four.chunks_played_per_viewer);
  EXPECT_DOUBLE_EQ(two.subscription_messages, four.subscription_messages);
}

}  // namespace
}  // namespace groupcast
