// Tests for the two-tier supernode overlay extension.
#include <gtest/gtest.h>

#include "core/middleware.h"
#include "overlay/supernode.h"
#include "test_helpers.h"
#include "util/require.h"

namespace groupcast::overlay {
namespace {

struct SupernodeFixture {
  testing::SmallWorld world;
  OverlayGraph graph;
  HostCacheServer cache;
  SupernodeLayout layout;

  explicit SupernodeFixture(std::size_t peers = 200, std::uint64_t seed = 3)
      : world(peers, seed),
        graph(peers),
        cache(*world.population, HostCacheOptions{}, world.rng),
        layout(build_supernode_overlay(*world.population, graph, cache,
                                       SupernodeOptions{}, world.rng)) {}
};

TEST(Supernode, TierAssignmentFollowsCapacity) {
  SupernodeFixture f;
  for (const auto sn : f.layout.supernodes) {
    EXPECT_GE(f.world.population->info(sn).capacity, 100.0);
    EXPECT_TRUE(f.layout.is_supernode[sn]);
  }
  for (const auto leaf : f.layout.leaves) {
    EXPECT_LT(f.world.population->info(leaf).capacity, 100.0);
    EXPECT_FALSE(f.layout.is_supernode[leaf]);
  }
  EXPECT_EQ(f.layout.supernodes.size() + f.layout.leaves.size(), 200u);
  // Table 1: 100x + 1000x + 10000x ~ 35% of peers.
  EXPECT_NEAR(f.layout.core_fraction(), 0.35, 0.12);
}

TEST(Supernode, LeavesOnlyConnectToSupernodes) {
  SupernodeFixture f;
  for (const auto leaf : f.layout.leaves) {
    const auto nbrs = f.graph.neighbors(leaf);
    EXPECT_GE(nbrs.size(), 1u);
    EXPECT_LE(f.graph.out_neighbors(leaf).size(), 2u);  // leaf_links
    for (const auto n : nbrs) {
      EXPECT_TRUE(f.layout.is_supernode[n])
          << "leaf " << leaf << " linked to leaf " << n;
    }
  }
}

TEST(Supernode, GraphIsConnected) {
  SupernodeFixture f;
  EXPECT_TRUE(f.graph.connectivity().connected);
}

TEST(Supernode, EveryPeerIsInHostCache) {
  SupernodeFixture f;
  for (PeerId p = 0; p < 200; ++p) EXPECT_TRUE(f.cache.contains(p));
}

TEST(Supernode, RejectsNonEmptyGraphAndBadOptions) {
  testing::SmallWorld world(32, 5);
  HostCacheServer cache(*world.population, HostCacheOptions{}, world.rng);
  OverlayGraph dirty(32);
  dirty.add_edge(0, 1);
  EXPECT_THROW(build_supernode_overlay(*world.population, dirty, cache,
                                       SupernodeOptions{}, world.rng),
               PreconditionError);
  OverlayGraph graph(32);
  SupernodeOptions bad;
  bad.capacity_threshold = 1e12;  // nobody qualifies
  EXPECT_THROW(build_supernode_overlay(*world.population, graph, cache, bad,
                                       world.rng),
               PreconditionError);
}

TEST(Supernode, MiddlewarePipelineRunsOnTwoTiers) {
  core::MiddlewareConfig config;
  config.peer_count = 300;
  config.seed = 7;
  config.overlay = core::OverlayKind::kSupernode;
  core::GroupCastMiddleware middleware(config);
  EXPECT_TRUE(middleware.graph().connectivity().connected);
  EXPECT_FALSE(middleware.supernode_layout().supernodes.empty());

  auto group = middleware.establish_random_group(40);
  EXPECT_GT(group.report.success_rate(), 0.9);
  EXPECT_TRUE(group.tree.is_consistent());

  const auto session = middleware.session(group);
  const auto result = session.disseminate(group.advert.rendezvous);
  EXPECT_GT(result.payload_messages, 0u);

  // Leaves never relay for others: every forwarding node with more than
  // one tree link is a supernode, except leaf subscribers passing the
  // payload up/down their single link.
  for (const auto& [node, fanout] : result.forward_fanout) {
    if (middleware.supernode_layout().is_supernode[node]) continue;
    EXPECT_LE(fanout, 1u) << "leaf " << node << " relays for others";
  }
}

TEST(Supernode, FewerWeakRelaysThanFlatOverlay) {
  auto weak_relay_fraction = [](core::OverlayKind kind) {
    core::MiddlewareConfig config;
    config.peer_count = 400;
    config.seed = 11;
    config.overlay = kind;
    core::GroupCastMiddleware middleware(config);
    auto group = middleware.establish_random_group(60);
    std::size_t weak = 0, relays = 0;
    for (const auto node : group.tree.nodes()) {
      if (group.tree.children(node).empty()) continue;
      ++relays;
      if (middleware.population().info(node).capacity < 100.0) ++weak;
    }
    return relays == 0 ? 0.0
                       : static_cast<double>(weak) /
                             static_cast<double>(relays);
  };
  EXPECT_LT(weak_relay_fraction(core::OverlayKind::kSupernode),
            weak_relay_fraction(core::OverlayKind::kGroupCast) + 1e-9);
}

}  // namespace
}  // namespace groupcast::overlay
