// Shared fixtures for the GroupCast test suites: a small deterministic
// underlay + population, and hand-built graphs with known properties.
#pragma once

#include <memory>

#include "net/routing.h"
#include "net/topology.h"
#include "overlay/population.h"
#include "util/rng.h"

namespace groupcast::testing {

/// A compact transit-stub world (~2 transit domains) with `peers` peers.
/// Deterministic for a given seed.
struct SmallWorld {
  std::unique_ptr<net::UnderlayTopology> underlay;
  std::unique_ptr<net::IpRouting> routing;
  std::unique_ptr<overlay::PeerPopulation> population;
  util::Rng rng;

  explicit SmallWorld(std::size_t peers = 64, std::uint64_t seed = 1)
      : rng(seed) {
    net::TransitStubConfig config;
    config.transit_domains = 2;
    config.routers_per_transit_domain = 2;
    config.stub_domains_per_transit_router = 2;
    config.routers_per_stub_domain = 4;
    underlay = std::make_unique<net::UnderlayTopology>(
        net::generate_transit_stub(config, rng));
    routing = std::make_unique<net::IpRouting>(*underlay);
    overlay::PopulationConfig pop;
    pop.peer_count = peers;
    pop.gnp.landmarks = 6;
    population =
        std::make_unique<overlay::PeerPopulation>(*routing, pop, rng);
  }
};

/// A straight-line underlay: routers 0-1-2-...-(n-1) with unit latencies.
/// Distances are exactly |i - j| ms, which makes routing assertions exact.
inline net::UnderlayTopology line_topology(std::size_t routers,
                                           double hop_ms = 1.0) {
  net::UnderlayTopology::Builder builder;
  for (std::size_t i = 0; i < routers; ++i) {
    builder.add_router(i == 0 ? net::RouterKind::kTransit
                              : net::RouterKind::kStub,
                       0);
  }
  for (std::size_t i = 0; i + 1 < routers; ++i) {
    builder.add_link(static_cast<net::RouterId>(i),
                     static_cast<net::RouterId>(i + 1), hop_ms);
  }
  return std::move(builder).build();
}

}  // namespace groupcast::testing
