// Tests for the timer-wheel scheduler features added on top of the basic
// event-loop semantics covered by sim_test.cc: cancellable/reschedulable
// handles, the fixed-signature timer path, FIFO ordering across wheel
// levels and the overflow heap, run_until boundaries, and a randomized
// golden-equality check against a reference (when, seq) priority model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace groupcast::sim {
namespace {

void push_arg(void* context, std::uint64_t arg) {
  static_cast<std::vector<std::uint64_t>*>(context)->push_back(arg);
}

TEST(TimerWheel, CancelPreventsFiring) {
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  const auto keep =
      simulator.schedule_timer(SimTime::millis(5), &push_arg, &fired, 1);
  const auto drop =
      simulator.schedule_timer(SimTime::millis(5), &push_arg, &fired, 2);
  EXPECT_TRUE(simulator.timer_pending(drop));
  EXPECT_TRUE(simulator.cancel(drop));
  EXPECT_FALSE(simulator.timer_pending(drop));
  EXPECT_FALSE(simulator.cancel(drop));  // already cancelled: stale
  EXPECT_EQ(simulator.pending(), 1u);
  EXPECT_EQ(simulator.run(), 1u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(simulator.cancel(keep));  // already fired: stale
}

TEST(TimerWheel, HandlesAreGenerationChecked) {
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  const auto first =
      simulator.schedule_timer(SimTime::millis(1), &push_arg, &fired, 1);
  simulator.run();
  // The slab slot is recycled by the next schedule; the old handle must
  // not be able to cancel the new event.
  const auto second =
      simulator.schedule_timer(SimTime::millis(1), &push_arg, &fired, 2);
  EXPECT_FALSE(simulator.cancel(first));
  EXPECT_TRUE(simulator.timer_pending(second));
  simulator.run();
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 2}));
}

TEST(TimerWheel, RescheduleMovesTheDeadline) {
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  auto tick =
      simulator.schedule_timer(SimTime::millis(10), &push_arg, &fired, 7);
  simulator.schedule_timer(SimTime::millis(20), &push_arg, &fired, 8);
  tick = simulator.reschedule(tick, SimTime::millis(30));
  EXPECT_TRUE(simulator.timer_pending(tick));
  simulator.run();
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{8, 7}));
  EXPECT_EQ(simulator.now(), SimTime::millis(30));
}

TEST(TimerWheel, RescheduleTakesFreshFifoPosition) {
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  const auto moved =
      simulator.schedule_timer(SimTime::millis(5), &push_arg, &fired, 1);
  simulator.schedule_timer(SimTime::millis(5), &push_arg, &fired, 2);
  // Same instant, but rescheduling re-enqueues: 1 now fires after 2.
  simulator.reschedule(moved, SimTime::millis(5));
  simulator.run();
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2, 1}));
}

TEST(TimerWheel, FifoTieBreakAcrossWheelLevels) {
  // Events for the same instant can be *scheduled* from different
  // distances: a long delay parks high in the wheel and cascades down,
  // a short one lands straight in a level-0 slot.  Scheduling order must
  // still win the tie, whatever path each event took.
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  const auto target = SimTime::millis(100);
  // Scheduled 100ms out: enters an upper wheel level.
  simulator.schedule_timer(target, &push_arg, &fired, 0);
  simulator.schedule_timer(target, &push_arg, &fired, 1);
  // Hop to 99.9ms, then schedule the same instant from close range
  // (level 0 of the wheel).
  simulator.schedule_at(SimTime::micros(99900), [&] {
    simulator.schedule_at(target, [&fired] { fired.push_back(2); });
    simulator.schedule_timer_at(target, &push_arg, &fired, 3);
  });
  simulator.run();
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(TimerWheel, RunUntilFiresDeadlineEventsAndKeepsLaterOnes) {
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  simulator.schedule_timer(SimTime::millis(10), &push_arg, &fired, 1);
  simulator.schedule_timer(SimTime::millis(20), &push_arg, &fired, 2);
  simulator.schedule_timer(SimTime::millis(30), &push_arg, &fired, 3);
  // Deadline exactly on an event: it fires; the later one stays queued.
  EXPECT_EQ(simulator.run_until(SimTime::millis(20)), 2u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(simulator.pending(), 1u);
  EXPECT_EQ(simulator.now(), SimTime::millis(20));
  // An idle stretch advances the clock to the deadline without firing.
  EXPECT_EQ(simulator.run_until(SimTime::millis(25)), 0u);
  EXPECT_EQ(simulator.now(), SimTime::millis(25));
  // The remaining event still fires at its own time, not the fast-forward.
  EXPECT_EQ(simulator.run(), 1u);
  EXPECT_EQ(simulator.now(), SimTime::millis(30));
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(TimerWheel, OverflowHorizonEventsFireInOrder) {
  // ~19.1 simulated hours fit the wheel (2^36 us); park events past the
  // horizon in the overflow heap, mix in near events, and check global
  // order plus cancellation inside the overflow.
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  const auto far = SimTime::seconds(90000);   // 9e10 us > 2^36
  const auto farther = SimTime::seconds(180000);
  simulator.schedule_timer(farther, &push_arg, &fired, 3);
  const auto dropped =
      simulator.schedule_timer(farther, &push_arg, &fired, 99);
  simulator.schedule_timer(far, &push_arg, &fired, 2);
  simulator.schedule_timer(SimTime::millis(1), &push_arg, &fired, 1);
  EXPECT_TRUE(simulator.cancel(dropped));
  EXPECT_EQ(simulator.run(), 3u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), farther);
}

TEST(TimerWheel, ClearMakesHandlesStale) {
  Simulator simulator;
  std::vector<std::uint64_t> fired;
  const auto handle =
      simulator.schedule_timer(SimTime::millis(5), &push_arg, &fired, 1);
  simulator.clear();
  EXPECT_EQ(simulator.pending(), 0u);
  EXPECT_FALSE(simulator.timer_pending(handle));
  EXPECT_FALSE(simulator.cancel(handle));
  EXPECT_EQ(simulator.run(), 0u);
  EXPECT_TRUE(fired.empty());
}

// Counts copies of the callable a schedule() action is wrapped in.  The
// old priority_queue kernel had to const_cast-move out of top(); this
// pins down that firing an action *moves* the stored callable instead of
// copying it (one copy is allowed when the lambda is first materialized
// into the std::function passed to schedule).
struct CopyCounter {
  std::shared_ptr<int> copies = std::make_shared<int>(0);
  std::shared_ptr<int> runs = std::make_shared<int>(0);
  CopyCounter() = default;
  CopyCounter(const CopyCounter& other)
      : copies(other.copies), runs(other.runs) {
    ++*copies;
  }
  CopyCounter(CopyCounter&&) = default;
  void operator()() const { ++*runs; }
};

TEST(TimerWheel, FiringMovesActionsInsteadOfCopying) {
  Simulator simulator;
  CopyCounter counter;
  const auto runs = counter.runs;
  const auto copies = counter.copies;
  Simulator::Action action = std::move(counter);  // one move, no copy
  const int copies_before_schedule = *copies;
  simulator.schedule(SimTime::millis(1), std::move(action));
  const int copies_after_schedule = *copies;
  // Moving the action into the queue must not copy the callable.
  EXPECT_EQ(copies_after_schedule, copies_before_schedule);
  simulator.run();
  EXPECT_EQ(*runs, 1);
  // Firing must not copy it either.
  EXPECT_EQ(*copies, copies_after_schedule);
}

TEST(TimerWheel, GoldenEqualityAgainstReferencePriorityModel) {
  // Randomized order check: many events with clustered timestamps (lots
  // of exact ties), some scheduled from inside callbacks, some cancelled.
  // The firing order must match a reference model sorted by (when, seq)
  // — the exact contract the old binary-heap kernel implemented.
  util::Rng rng(0xC0FFEE);
  Simulator simulator;

  struct Expected {
    std::int64_t when_us;
    std::uint64_t seq;
    std::uint64_t id;
  };
  std::vector<Expected> expected;
  std::vector<std::uint64_t> fired;
  // Mirrors the simulator's internal sequence counter: every schedule
  // call below — including ones made from inside firing events — is
  // paired with exactly one seq++ at the same moment, so the reference
  // model's (when, seq) keys are exactly the kernel's.
  std::uint64_t seq = 0;
  std::uint64_t next_id = 0;

  auto record_and_schedule = [&](std::int64_t when_us) {
    const auto id = next_id++;
    expected.push_back(Expected{when_us, seq++, id});
    return simulator.schedule_at(SimTime::micros(when_us),
                                 [&fired, id] { fired.push_back(id); });
  };

  for (int i = 0; i < 400; ++i) {
    // Cluster on multiples of 50us so same-instant ties are common; spray
    // a few far out so upper wheel levels, cascades, and the overflow
    // heap all participate.
    std::int64_t when = 50 * static_cast<std::int64_t>(rng.uniform_index(40));
    if (i % 17 == 0) when += 1 << 20;
    if (i % 41 == 0) when += 1LL << 37;  // beyond the wheel horizon
    const auto handle = record_and_schedule(when);
    if (i % 23 == 0) {
      // Cancellation: drop the event from both queue and model (cancel
      // consumes no sequence number).
      ASSERT_TRUE(simulator.cancel(handle));
      expected.pop_back();
      --next_id;
    }
    if (i % 13 == 0) {
      // Nested scheduling: a wrapper event that, when it fires, records
      // and schedules one more event — exercising the fire-time sequence
      // assignment and mid-drain same-instant appends.
      const std::int64_t base = when;
      const std::int64_t extra =
          base + 50 * static_cast<std::int64_t>(rng.uniform_index(20));
      ++seq;  // the wrapper's own schedule call, made just below
      simulator.schedule_at(SimTime::micros(base), [&, extra] {
        record_and_schedule(extra);
      });
    }
  }

  simulator.run();

  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     if (a.when_us != b.when_us) return a.when_us < b.when_us;
                     return a.seq < b.seq;
                   });
  std::vector<std::uint64_t> want;
  want.reserve(expected.size());
  for (const auto& e : expected) want.push_back(e.id);
  EXPECT_EQ(fired, want);
}

}  // namespace
}  // namespace groupcast::sim
