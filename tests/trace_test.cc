// Tests for the tracing subsystem: sinks, counters, JSONL round-trips,
// simulator instrumentation, and end-to-end determinism of seeded runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "metrics/experiment.h"
#include "sim/simulator.h"
#include "trace/counters.h"
#include "trace/sink.h"
#include "trace/trace.h"

namespace groupcast::trace {
namespace {

/// Leaves the global tracer/counters/timers exactly as found: detached,
/// disabled, zeroed.  Every test in this file runs inside one.
class GlobalTraceGuard {
 public:
  GlobalTraceGuard() { reset(); }
  ~GlobalTraceGuard() { reset(); }

 private:
  static void reset() {
    tracer().set_sink(nullptr);
    counters().disable();
    counters().reset();
    timers().disable();
    timers().reset();
    histograms().disable();
    histograms().reset();
    flight_recorder().disable();
    flight_recorder().reset();
  }
};

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(RingBufferSink, KeepsMostRecentOnWraparound) {
  GlobalTraceGuard guard;
  RingBufferSink ring(3);
  for (std::int64_t i = 0; i < 5; ++i) {
    ring.record(TraceEvent{i, EventKind::kSimEvent, 0, kNoNode, 0});
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_us, 2);  // oldest surviving
  EXPECT_EQ(events[1].t_us, 3);
  EXPECT_EQ(events[2].t_us, 4);

  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(RingBufferSink, BelowCapacityReturnsInOrder) {
  RingBufferSink ring(8);
  ring.record(TraceEvent{1, EventKind::kPeerJoin, 7, kNoNode, 2});
  ring.record(TraceEvent{2, EventKind::kPeerLeave, 7, kNoNode, 0});
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kPeerJoin);
  EXPECT_EQ(events[1].kind, EventKind::kPeerLeave);
}

TEST(Jsonl, RoundTripsEveryEventKind) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(EventKind::kCount_);
       ++k) {
    const TraceEvent event{123456, static_cast<EventKind>(k), 42, 7, 99};
    const auto line = to_jsonl(event);
    const auto parsed = parse_jsonl(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(*parsed, event) << line;
  }
}

TEST(Jsonl, RoundTripsNoNodeAsMinusOne) {
  const TraceEvent event{0, EventKind::kMaintenanceEpoch, kNoNode, kNoNode,
                         3};
  const auto line = to_jsonl(event);
  EXPECT_NE(line.find("\"node\":-1"), std::string::npos) << line;
  const auto parsed = parse_jsonl(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->node, kNoNode);
  EXPECT_EQ(parsed->peer, kNoNode);
}

TEST(Jsonl, RejectsMalformedLines) {
  EXPECT_FALSE(parse_jsonl("").has_value());
  EXPECT_FALSE(parse_jsonl("not json").has_value());
  EXPECT_FALSE(parse_jsonl("{\"t_us\":1}").has_value());
  EXPECT_FALSE(
      parse_jsonl(
          R"({"t_us":1,"kind":"bogus","node":0,"peer":0,"value":0})")
          .has_value());
}

TEST(Jsonl, FileSinkRoundTrip) {
  GlobalTraceGuard guard;
  const auto path = temp_path("trace_roundtrip.jsonl");
  {
    JsonlFileSink sink(path);
    sink.record(TraceEvent{10, EventKind::kAdvertForwarded, 1, 2, 6});
    sink.record(TraceEvent{20, EventKind::kMessageDropped, 3, 4,
                           static_cast<std::uint64_t>(DropReason::kLoss)});
    EXPECT_EQ(sink.recorded(), 2u);
  }
  std::size_t malformed = 0;
  const auto events = read_jsonl_file(path, &malformed);
  ASSERT_TRUE(events.has_value());
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].t_us, 10);
  EXPECT_EQ((*events)[1].kind, EventKind::kMessageDropped);
  std::remove(path.c_str());
}

TEST(Jsonl, ReaderSkipsAndCountsMalformedLines) {
  const auto path = temp_path("trace_malformed.jsonl");
  {
    std::ofstream out(path);
    out << to_jsonl(TraceEvent{1, EventKind::kPeerJoin, 0, kNoNode, 0})
        << "\ngarbage line\n"
        << to_jsonl(TraceEvent{2, EventKind::kPeerLeave, 0, kNoNode, 0})
        << "\n";
  }
  std::size_t malformed = 0;
  const auto events = read_jsonl_file(path, &malformed);
  ASSERT_TRUE(events.has_value());
  EXPECT_EQ(events->size(), 2u);
  EXPECT_EQ(malformed, 1u);
  std::remove(path.c_str());
}

TEST(CounterRegistry, DisabledIncrIsNoOp) {
  GlobalTraceGuard guard;
  counters().incr(3, CounterId::kMessagesSent);
  EXPECT_EQ(counters().total(CounterId::kMessagesSent), 0u);
  EXPECT_EQ(counters().node_count(), 0u);
}

TEST(CounterRegistry, SnapshotAndResetSemantics) {
  GlobalTraceGuard guard;
  counters().enable(4);
  counters().incr(1, CounterId::kMessagesSent, 5);
  counters().incr(3, CounterId::kMessagesSent, 2);
  counters().incr(3, CounterId::kTreeEdges);
  counters().incr(kNoNode, CounterId::kMessagesDropped);  // totals only

  const auto snap = counters().snapshot();
  EXPECT_EQ(snap.total(CounterId::kMessagesSent), 7u);
  EXPECT_EQ(snap.total(CounterId::kMessagesDropped), 1u);
  EXPECT_EQ(snap.of(1, CounterId::kMessagesSent), 5u);
  EXPECT_EQ(snap.of(3, CounterId::kMessagesSent), 2u);
  EXPECT_EQ(snap.of(3, CounterId::kTreeEdges), 1u);
  EXPECT_EQ(snap.of(99, CounterId::kMessagesSent), 0u);  // out of range

  counters().reset();
  EXPECT_TRUE(counters().enabled());  // reset keeps the enabled state
  EXPECT_EQ(counters().total(CounterId::kMessagesSent), 0u);
  // The snapshot is an independent copy.
  EXPECT_EQ(snap.total(CounterId::kMessagesSent), 7u);

  counters().incr(0, CounterId::kJoins);
  EXPECT_EQ(counters().total(CounterId::kJoins), 1u);
}

TEST(CounterRegistry, ScopedRegistryRedirectsAndRestores) {
  GlobalTraceGuard guard;
  counters().enable(2);
  CounterRegistry local;
  local.enable(2);
  {
    ScopedCounterRegistry scoped(local);
    EXPECT_EQ(&counters(), &local);
    counters().incr(0, CounterId::kMessagesSent, 4);
  }
  // Increments landed in the injected registry, not the default one.
  EXPECT_EQ(local.total(CounterId::kMessagesSent), 4u);
  EXPECT_EQ(counters().total(CounterId::kMessagesSent), 0u);
  EXPECT_NE(&counters(), &local);
}

TEST(CounterRegistry, ScopedRegistriesNest) {
  GlobalTraceGuard guard;
  CounterRegistry outer, inner;
  outer.enable(1);
  inner.enable(1);
  ScopedCounterRegistry scope_outer(outer);
  counters().incr(0, CounterId::kJoins);
  {
    ScopedCounterRegistry scope_inner(inner);
    counters().incr(0, CounterId::kJoins);
  }
  counters().incr(0, CounterId::kJoins);
  EXPECT_EQ(outer.total(CounterId::kJoins), 2u);
  EXPECT_EQ(inner.total(CounterId::kJoins), 1u);
}

TEST(CounterRegistry, ActiveRegistryIsPerThread) {
  GlobalTraceGuard guard;
  CounterRegistry main_local;
  main_local.enable(1);
  ScopedCounterRegistry scoped(main_local);
  // A worker thread sees its own default registry, not the one injected
  // on the main thread; its increments never touch main_local.
  bool worker_saw_injected = true;
  std::thread worker([&] {
    worker_saw_injected = (&counters() == &main_local);
    counters().incr(0, CounterId::kLeaves);  // disabled default: no-op
  });
  worker.join();
  EXPECT_FALSE(worker_saw_injected);
  EXPECT_EQ(main_local.total(CounterId::kLeaves), 0u);
}

TEST(CounterSnapshot, MergeIsElementWiseAndGrows) {
  CounterSnapshot a, b;
  a.totals[0] = 3;
  a.per_node.resize(1);
  a.per_node[0][0] = 3;
  b.totals[0] = 4;
  b.totals[1] = 7;
  b.per_node.resize(3);
  b.per_node[2][1] = 7;
  a.merge(b);
  EXPECT_EQ(a.totals[0], 7u);
  EXPECT_EQ(a.totals[1], 7u);
  ASSERT_EQ(a.per_node.size(), 3u);
  EXPECT_EQ(a.per_node[0][0], 3u);
  EXPECT_EQ(a.per_node[2][1], 7u);
}

TEST(CounterSnapshot, MergeOrderDoesNotMatter) {
  CounterSnapshot x, y;
  x.totals[2] = 5;
  x.per_node.resize(2);
  x.per_node[1][2] = 5;
  y.totals[2] = 9;
  y.per_node.resize(1);
  y.per_node[0][2] = 9;
  CounterSnapshot xy = x, yx = y;
  xy.merge(y);
  yx.merge(x);
  EXPECT_TRUE(xy == yx);
}

TEST(CounterRegistry, MergeFoldsSnapshotUnlessDisabled) {
  CounterRegistry registry;
  CounterSnapshot snap;
  snap.totals[0] = 6;
  snap.per_node.resize(1);
  snap.per_node[0][0] = 6;
  registry.merge(snap);  // disabled: dropped
  EXPECT_EQ(registry.total(static_cast<CounterId>(0)), 0u);
  registry.enable(1);
  registry.incr(0, static_cast<CounterId>(0), 2);
  registry.merge(snap);
  EXPECT_EQ(registry.total(static_cast<CounterId>(0)), 8u);
  EXPECT_EQ(registry.of(0, static_cast<CounterId>(0)), 8u);
}

TEST(CounterSnapshot, TopNodesRanksAndSkipsZeros) {
  CounterSnapshot snap;
  snap.per_node.resize(5);
  snap.per_node[0][0] = 3;
  snap.per_node[2][0] = 9;
  snap.per_node[4][0] = 3;
  const auto top = snap.top_nodes(static_cast<CounterId>(0), 10);
  ASSERT_EQ(top.size(), 3u);  // zero rows skipped
  EXPECT_EQ(top[0], (std::pair<NodeId, std::uint64_t>{2, 9}));
  EXPECT_EQ(top[1], (std::pair<NodeId, std::uint64_t>{0, 3}));  // tie: lower id
  EXPECT_EQ(top[2], (std::pair<NodeId, std::uint64_t>{4, 3}));
}

TEST(CounterSnapshot, TotalsDelta) {
  CounterSnapshot base, next;
  base.totals[0] = 10;
  next.totals[0] = 15;
  next.totals[1] = 4;
  const auto delta = next.totals_delta(base);
  EXPECT_EQ(delta[0], 5);
  EXPECT_EQ(delta[1], 4);
}

TEST(Tracer, EmitCounterSnapshotExportsNonZeroPairsThenTotals) {
  GlobalTraceGuard guard;
  RingBufferSink ring(64);
  tracer().set_sink(&ring);
  counters().enable(2);
  counters().incr(1, CounterId::kMessagesSent, 3);
  emit_counter_snapshot(77);

  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  // Per-node row first, then the totals row with node == kNoNode.
  EXPECT_EQ(events[0].node, 1u);
  EXPECT_EQ(events[0].peer,
            static_cast<NodeId>(CounterId::kMessagesSent));
  EXPECT_EQ(events[0].value, 3u);
  EXPECT_EQ(events[1].node, kNoNode);
  EXPECT_EQ(events[1].value, 3u);
  EXPECT_EQ(events[1].t_us, 77);
}

TEST(Tracer, DisabledEmitReachesNoSink) {
  GlobalTraceGuard guard;
  RingBufferSink ring(4);
  // Not installed: emit must be inert.
  tracer().emit(1, EventKind::kSimEvent, 0);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_FALSE(tracer().enabled());
}

TEST(SimulatorTracing, EmitsSimEventsAndTracksHighWater) {
  GlobalTraceGuard guard;
  RingBufferSink ring(64);
  tracer().set_sink(&ring);

  sim::Simulator simulator;
  int fired = 0;
  simulator.schedule(sim::SimTime::millis(2), [&] { ++fired; });
  simulator.schedule(sim::SimTime::millis(1), [&] { ++fired; });
  simulator.run();

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.events_fired(), 2u);
  EXPECT_EQ(simulator.queue_high_water(), 2u);

  std::size_t sim_events = 0, lag_events = 0;
  for (const auto& e : ring.events()) {
    if (e.kind == EventKind::kSimEvent) ++sim_events;
    if (e.kind == EventKind::kEventLoopLag) ++lag_events;
  }
  EXPECT_EQ(sim_events, 2u);
  EXPECT_GE(lag_events, 1u);  // the high-water mark advanced at least once
}

TEST(SimulatorTracing, ScopedTimerAccumulatesWhenEnabled) {
  GlobalTraceGuard guard;
  timers().enable();
  {
    ScopedTimer timer(TimerId::kAnnounce);
  }
  EXPECT_EQ(timers().of(TimerId::kAnnounce).calls, 1u);
  timers().disable();
  {
    ScopedTimer timer(TimerId::kAnnounce);
  }
  EXPECT_EQ(timers().of(TimerId::kAnnounce).calls, 1u);  // unchanged
}

metrics::ScenarioConfig small_scenario() {
  metrics::ScenarioConfig config;
  config.peer_count = 200;
  config.groups = 2;
  config.seed = 17;
  return config;
}

TEST(Determinism, SeededRunsProduceIdenticalEventsAndCounters) {
  GlobalTraceGuard guard;

  auto run_once = [](std::vector<TraceEvent>& events,
                     CounterSnapshot& snap) {
    RingBufferSink ring(1 << 16);
    tracer().set_sink(&ring);
    counters().enable(200);
    (void)metrics::run_scenario(small_scenario());
    events = ring.events();
    snap = counters().snapshot();
    tracer().set_sink(nullptr);
    counters().disable();
    counters().reset();
  };

  std::vector<TraceEvent> first, second;
  CounterSnapshot snap_first, snap_second;
  run_once(first, snap_first);
  run_once(second, snap_second);

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(snap_first.totals, snap_second.totals);
  EXPECT_EQ(snap_first.per_node, snap_second.per_node);
}

TEST(Determinism, SeededRunsProduceByteIdenticalJsonlFiles) {
  GlobalTraceGuard guard;

  auto run_once = [](const std::string& path) {
    {
      ScopedSink sink(std::make_unique<JsonlFileSink>(path));
      counters().enable(200);
      (void)metrics::run_scenario(small_scenario());
      emit_counter_snapshot();
    }
    counters().disable();
    counters().reset();
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
  };

  const auto a = run_once(temp_path("trace_det_a.jsonl"));
  const auto b = run_once(temp_path("trace_det_b.jsonl"));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(temp_path("trace_det_a.jsonl").c_str());
  std::remove(temp_path("trace_det_b.jsonl").c_str());
}

TEST(Experiment, ScenarioResultCarriesCountersAndGroupStddev) {
  GlobalTraceGuard guard;
  counters().enable(200);
  const auto result = metrics::run_scenario(small_scenario());
  counters().disable();

  EXPECT_GT(result.counters.total(CounterId::kJoins), 0u);
  EXPECT_GT(result.counters.total(CounterId::kTreeEdges), 0u);
  // Two groups with different trees: dispersion fields are populated.
  EXPECT_GE(result.link_stress_group_stddev, 0.0);
  EXPECT_GE(result.delay_penalty_group_stddev, 0.0);
}

TEST(Experiment, CountersEmptyWhenRegistryDisabled) {
  GlobalTraceGuard guard;
  const auto result = metrics::run_scenario(small_scenario());
  EXPECT_EQ(result.counters.total(CounterId::kJoins), 0u);
  EXPECT_TRUE(result.counters.per_node.empty());
}

}  // namespace
}  // namespace groupcast::trace
