// Unit tests for util: RNG determinism and statistics, distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "util/distributions.h"
#include "util/require.h"
#include "util/rng.h"
#include "util/stats.h"

namespace groupcast::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(Rng, ChanceProbabilityApproximate) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.5);
  EXPECT_NEAR(total / n, 2.5, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(31);
  const auto picks = rng.sample_indices(50, 20);
  ASSERT_EQ(picks.size(), 20u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto p : picks) EXPECT_LT(p, 50u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(37);
  const auto picks = rng.sample_indices(8, 8);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_indices(3, 4), PreconditionError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(43);
  Rng child = a.split();
  // The child stream should not replay the parent stream.
  Rng b(43);
  (void)b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamSeedIsDeterministicAndSeparating) {
  EXPECT_EQ(stream_seed(7, 3), stream_seed(7, 3));
  // The harness ladders seeds (seed, seed+1, ...) while the middleware
  // draws stream 0 of each; none of the nearby (seed, stream) pairs may
  // collide, or a ladder step would replay another deployment's stream.
  EXPECT_NE(stream_seed(1, 0), stream_seed(1, 1));
  EXPECT_NE(stream_seed(1, 0), stream_seed(2, 0));
  EXPECT_NE(stream_seed(1, 1), stream_seed(2, 0));
  EXPECT_NE(stream_seed(2, 1), stream_seed(1, 2));
}

TEST(Rng, ForStreamMatchesStreamSeed) {
  Rng direct(stream_seed(99, 4));
  Rng streamed = Rng::for_stream(99, 4);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(direct(), streamed());
}

TEST(Rng, StreamsOfOneSeedDiverge) {
  Rng a = Rng::for_stream(42, 0);
  Rng b = Rng::for_stream(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(100, 2.0);
  double total = 0.0;
  for (std::size_t k = 1; k <= 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankOneMostProbable) {
  ZipfDistribution zipf(50, 1.5);
  for (std::size_t k = 2; k <= 50; ++k) {
    EXPECT_GT(zipf.pmf(1), zipf.pmf(k));
  }
}

TEST(Zipf, EmpiricalMatchesPmf) {
  ZipfDistribution zipf(10, 2.0);
  Rng rng(47);
  std::vector<int> counts(11, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfDistribution(0, 2.0), PreconditionError);
  EXPECT_THROW(ZipfDistribution(10, 0.0), PreconditionError);
}

TEST(Categorical, NormalizesWeights) {
  Categorical c({2.0, 6.0, 2.0});
  EXPECT_NEAR(c.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(c.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(c.probability(2), 0.2, 1e-12);
}

TEST(Categorical, SamplingMatchesWeights) {
  Categorical c({1.0, 3.0});
  Rng rng(53);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += c.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Categorical, RejectsInvalidWeights) {
  EXPECT_THROW(Categorical({}), PreconditionError);
  EXPECT_THROW(Categorical({-1.0, 2.0}), PreconditionError);
  EXPECT_THROW(Categorical({0.0, 0.0}), PreconditionError);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Summary, EmptyGuards) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), PreconditionError);
  EXPECT_THROW(s.percentile(0.5), PreconditionError);
}

TEST(FrequencyCount, ItemsSortedAndTotals) {
  FrequencyCount f;
  f.add(3);
  f.add(1, 2);
  f.add(3);
  const auto items = f.items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], (std::pair<std::size_t, std::size_t>{1, 2}));
  EXPECT_EQ(items[1], (std::pair<std::size_t, std::size_t>{3, 2}));
  EXPECT_EQ(f.total(), 4u);
}

TEST(FrequencyCount, LogLogSlopeOfPerfectPowerLaw) {
  // count(d) = 1024 * d^-2 -> slope -2 exactly in log-log space (all the
  // counts are exact integers for d a power of two).
  FrequencyCount f;
  for (std::size_t d = 1; d <= 16; d *= 2) {
    f.add(d, 1024 / (d * d));
  }
  EXPECT_NEAR(f.log_log_slope(), -2.0, 1e-9);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4}, y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, DegenerateSeriesGiveZero) {
  std::vector<double> x{1, 1, 1}, y{1, 2, 3};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Require, MacrosThrowTypedErrors) {
  EXPECT_THROW(GC_REQUIRE(false), PreconditionError);
  EXPECT_THROW(GC_ENSURE(false), InvariantError);
  EXPECT_NO_THROW(GC_REQUIRE(true));
  EXPECT_NO_THROW(GC_ENSURE(true));
}

}  // namespace
}  // namespace groupcast::util
