// Tests for the utility function (Equations 1–6): the heart of the paper.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "core/utility.h"
#include "util/require.h"

namespace groupcast::core {
namespace {

std::vector<Candidate> uniform_candidates(std::size_t n, double capacity,
                                          double distance) {
  return std::vector<Candidate>(n, Candidate{capacity, distance});
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// ------------------------------------------------------------- parameters

TEST(UtilityParams, PaperParameterization) {
  // α = 1 - r, β = r, γ = e^{-(ln r)^2}.
  const auto p = UtilityParams::from_resource_level(0.5);
  EXPECT_DOUBLE_EQ(p.alpha, 0.5);
  EXPECT_DOUBLE_EQ(p.beta, 0.5);
  EXPECT_NEAR(p.gamma, std::exp(-std::log(0.5) * std::log(0.5)), 1e-12);
}

TEST(UtilityParams, GammaLimits) {
  // Weak peer: gamma -> 0 (distance rules); strong peer: gamma -> 1.
  EXPECT_LT(UtilityParams::from_resource_level(0.001).gamma, 0.01);
  EXPECT_GT(UtilityParams::from_resource_level(0.999).gamma, 0.99);
  // Gamma is always a valid weight.
  for (double r = 0.01; r < 1.0; r += 0.07) {
    const auto p = UtilityParams::from_resource_level(r);
    EXPECT_GE(p.gamma, 0.0);
    EXPECT_LE(p.gamma, 1.0);
    EXPECT_LT(p.alpha, 1.0);
    EXPECT_LT(p.beta, 1.0);
  }
}

TEST(UtilityParams, ClampHandlesDegenerateEstimates) {
  EXPECT_GT(clamp_resource_level(0.0), 0.0);
  EXPECT_LT(clamp_resource_level(1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp_resource_level(0.4), 0.4);
  // from_resource_level must not blow up at the boundaries.
  EXPECT_NO_THROW(UtilityParams::from_resource_level(0.0));
  EXPECT_NO_THROW(UtilityParams::from_resource_level(1.0));
}

// ---------------------------------------------------- distance preference

TEST(DistancePreference, IsProbabilityVector) {
  util::Rng rng(1);
  std::vector<Candidate> list;
  for (int i = 0; i < 50; ++i) {
    list.push_back(Candidate{1.0, rng.uniform(1.0, 400.0)});
  }
  const auto dp = distance_preferences(0.7, list);
  EXPECT_NEAR(sum(dp), 1.0, 1e-9);
  for (const double p : dp) EXPECT_GT(p, 0.0);
}

TEST(DistancePreference, CloserIsPreferred) {
  const std::vector<Candidate> list{{1.0, 10.0}, {1.0, 100.0}, {1.0, 400.0}};
  const auto dp = distance_preferences(0.5, list);
  EXPECT_GT(dp[0], dp[1]);
  EXPECT_GT(dp[1], dp[2]);
}

TEST(DistancePreference, HigherAlphaSharpensCloseness) {
  const std::vector<Candidate> list{{1.0, 10.0}, {1.0, 400.0}};
  const auto mild = distance_preferences(0.0, list);
  const auto sharp = distance_preferences(0.95, list);
  EXPECT_GT(sharp[0], mild[0]);
  EXPECT_LT(sharp[1], mild[1]);
}

TEST(DistancePreference, EqualDistancesAreUniform) {
  const auto dp = distance_preferences(0.5, uniform_candidates(4, 1.0, 50.0));
  for (const double p : dp) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(DistancePreference, ZeroDistanceHandled) {
  const std::vector<Candidate> list{{1.0, 0.0}, {1.0, 100.0}};
  const auto dp = distance_preferences(0.5, list);
  EXPECT_GT(dp[0], dp[1]);
  EXPECT_NEAR(sum(dp), 1.0, 1e-9);
}

TEST(DistancePreference, RejectsBadInput) {
  EXPECT_THROW(distance_preferences(0.5, {}), PreconditionError);
  const auto list = uniform_candidates(2, 1.0, 10.0);
  EXPECT_THROW(distance_preferences(1.0, list), PreconditionError);
}

// ---------------------------------------------------- capacity preference

TEST(CapacityPreference, ExactProportionality) {
  // With beta = 0, CP is exactly capacity / total.
  const std::vector<Candidate> list{{1.0, 1.0}, {3.0, 1.0}, {6.0, 1.0}};
  const auto cp = capacity_preferences(0.0, list);
  EXPECT_NEAR(cp[0], 0.1, 1e-12);
  EXPECT_NEAR(cp[1], 0.3, 1e-12);
  EXPECT_NEAR(cp[2], 0.6, 1e-12);
}

TEST(CapacityPreference, BetaBoostsContrast) {
  const std::vector<Candidate> list{{1.0, 1.0}, {2.0, 1.0}};
  const auto flat = capacity_preferences(0.0, list);
  const auto sharp = capacity_preferences(0.9, list);
  EXPECT_GT(sharp[1] - sharp[0], flat[1] - flat[0]);
}

TEST(CapacityPreference, ClampsBetaAboveWeakestCapacity) {
  // beta above (or at) the smallest capacity used to abort; Eq. 3 now
  // clamps it to just under the weakest candidate so every numerator
  // C_j - beta stays positive.
  const std::vector<Candidate> list{{0.5, 1.0}, {2.0, 1.0}};
  const auto cp = capacity_preferences(0.7, list);
  EXPECT_NEAR(sum(cp), 1.0, 1e-9);
  for (const double p : cp) EXPECT_GT(p, 0.0);
  // The weakest candidate degrades toward zero preference but the
  // capacity ordering survives the clamp.
  EXPECT_LT(cp[0], 1e-6);
  EXPECT_GT(cp[1], cp[0]);
}

TEST(CapacityPreference, StrongPeerWithWeakCandidatesDoesNotAbort) {
  // Regression: r -> 1 makes beta -> 1 while Eq. 6 occurrence-frequency
  // "capacities" live in [0, 1], so every candidate can sit at or below
  // beta.  This combination aborted before the clamp.
  const auto params = UtilityParams::from_resource_level(0.999);
  const std::vector<Candidate> list{{0.12, 5.0}, {0.07, 20.0}, {0.3, 80.0}};
  ASSERT_NO_THROW(capacity_preferences(params.beta, list));
  const auto cp = capacity_preferences(params.beta, list);
  EXPECT_NEAR(sum(cp), 1.0, 1e-9);
  for (const double p : cp) EXPECT_GT(p, 0.0);
  // Relative order still follows capacity.
  EXPECT_GT(cp[2], cp[0]);
  EXPECT_GT(cp[0], cp[1]);
  // The full Eq. 5 path is usable too.
  EXPECT_NO_THROW(selection_preferences(params, list));
}

TEST(CapacityPreference, ClampKeepsEqualCapacitiesUniform) {
  // All candidates at the same capacity <= beta: clamping must fall back
  // to a uniform (not degenerate) preference vector.
  const auto cp = capacity_preferences(0.9, uniform_candidates(4, 0.3, 1.0));
  for (const double p : cp) EXPECT_NEAR(p, 0.25, 1e-9);
}

// --------------------------------------------------- selection preference

TEST(SelectionPreference, IsProbabilityVector) {
  util::Rng rng(2);
  std::vector<Candidate> list;
  for (int i = 0; i < 100; ++i) {
    list.push_back(
        Candidate{rng.uniform(1.0, 1000.0), rng.uniform(1.0, 400.0)});
  }
  for (const double r : {0.05, 0.3, 0.5, 0.7, 0.95}) {
    const auto p = selection_preferences(r, list);
    EXPECT_NEAR(sum(p), 1.0, 1e-9) << "r=" << r;
    for (const double x : p) EXPECT_GE(x, 0.0);
  }
}

TEST(SelectionPreference, WeakPeerFollowsDistance) {
  // Candidate 0: close but weak.  Candidate 1: far but powerful.
  const std::vector<Candidate> list{{1.0, 5.0}, {1000.0, 350.0}};
  const auto weak = selection_preferences(0.02, list);
  EXPECT_GT(weak[0], weak[1]);
}

TEST(SelectionPreference, StrongPeerFollowsCapacity) {
  const std::vector<Candidate> list{{1.0, 5.0}, {1000.0, 350.0}};
  const auto strong = selection_preferences(0.98, list);
  EXPECT_GT(strong[1], strong[0]);
}

TEST(SelectionPreference, GammaZeroEqualsDistancePreference) {
  const std::vector<Candidate> list{{7.0, 10.0}, {2.0, 40.0}, {9.0, 200.0}};
  UtilityParams params{0.5, 0.5, 0.0};
  const auto sel = selection_preferences(params, list);
  const auto dp = distance_preferences(0.5, list);
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_NEAR(sel[i], dp[i], 1e-12);
  }
}

TEST(SelectionPreference, GammaOneEqualsCapacityPreference) {
  const std::vector<Candidate> list{{7.0, 10.0}, {2.0, 40.0}, {9.0, 200.0}};
  UtilityParams params{0.5, 0.5, 1.0};
  const auto sel = selection_preferences(params, list);
  const auto cp = capacity_preferences(0.5, list);
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_NEAR(sel[i], cp[i], 1e-12);
  }
}

TEST(SelectionPreference, SingleCandidateGetsEverything) {
  const std::vector<Candidate> list{{5.0, 100.0}};
  const auto p = selection_preferences(0.5, list);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

// A property sweep over the resource-level grid: the expected capacity of
// the selected candidate must increase with the selector's resource level
// (the paper's design rationale, Section 3.1).
class PreferenceMonotonicityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreferenceMonotonicityTest, ExpectedCapacityRisesWithResourceLevel) {
  util::Rng rng(GetParam());
  std::vector<Candidate> list;
  for (int i = 0; i < 200; ++i) {
    list.push_back(
        Candidate{rng.uniform(1.0, 1000.0), rng.uniform(1.0, 400.0)});
  }
  double previous = -1.0;
  for (const double r : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const auto p = selection_preferences(r, list);
    double expected_capacity = 0.0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      expected_capacity += p[i] * list[i].capacity;
    }
    EXPECT_GT(expected_capacity, previous) << "r=" << r;
    previous = expected_capacity;
  }
}

TEST_P(PreferenceMonotonicityTest, ExpectedDistanceFallsAsGammaDrops) {
  util::Rng rng(GetParam() + 100);
  std::vector<Candidate> list;
  for (int i = 0; i < 200; ++i) {
    list.push_back(
        Candidate{rng.uniform(1.0, 1000.0), rng.uniform(1.0, 400.0)});
  }
  const auto weak = selection_preferences(0.05, list);
  const auto strong = selection_preferences(0.95, list);
  double weak_dist = 0.0, strong_dist = 0.0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    weak_dist += weak[i] * list[i].distance_ms;
    strong_dist += strong[i] * list[i].distance_ms;
  }
  EXPECT_LT(weak_dist, strong_dist);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreferenceMonotonicityTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ------------------------------------------------------ weighted sampling

TEST(WeightedSample, DistinctIndicesWithinRange) {
  util::Rng rng(3);
  const std::vector<double> weights{1, 2, 3, 4, 5, 6};
  const auto picks = weighted_sample_without_replacement(weights, 4, rng);
  ASSERT_EQ(picks.size(), 4u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 4u);
  for (const auto p : picks) EXPECT_LT(p, weights.size());
}

TEST(WeightedSample, SkipsZeroWeights) {
  util::Rng rng(5);
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = weighted_sample_without_replacement(weights, 2, rng);
    for (const auto p : picks) EXPECT_TRUE(p == 1 || p == 3);
  }
}

TEST(WeightedSample, ClipsKToPositiveWeights) {
  util::Rng rng(7);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  const auto picks = weighted_sample_without_replacement(weights, 3, rng);
  EXPECT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 1u);
}

TEST(WeightedSample, FirstPickFollowsWeights) {
  util::Rng rng(9);
  const std::vector<double> weights{1.0, 9.0};
  int picked_heavy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto picks = weighted_sample_without_replacement(weights, 1, rng);
    picked_heavy += picks[0] == 1 ? 1 : 0;
  }
  EXPECT_NEAR(picked_heavy / static_cast<double>(n), 0.9, 0.01);
}

TEST(WeightedSample, ResidualRecomputationKeepsTailUnbiased) {
  // Regression for the drift bug: the sampler used to maintain the
  // residual mass by repeated subtraction, so after drawing a weight
  // much larger than the rest the stored total collapsed to the
  // cancellation error (here exactly 0.0) and every later round
  // degenerated to "first positive index".  Recomputing the residual
  // each round keeps the tail draws proportional to what is left.
  util::Rng rng(17);
  const std::vector<double> weights{1e17, 1.0, 1.0, 1.0, 1.0};
  std::vector<int> hits(weights.size(), 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const auto picks = weighted_sample_without_replacement(weights, 2, rng);
    ASSERT_EQ(picks.size(), 2u);
    ASSERT_EQ(picks[0], 0u);  // the heavy weight dominates round one
    ++hits[picks[1]];
  }
  // Round two must be uniform over the four surviving equal weights; the
  // subtraction version picked index 1 with probability 1.
  for (std::size_t j = 1; j < weights.size(); ++j) {
    EXPECT_NEAR(hits[j] / static_cast<double>(n), 0.25, 0.03) << "j=" << j;
  }
}

TEST(WeightedSample, PairFrequenciesMatchSequentialWeights) {
  // Statistical check of the full without-replacement law: the ordered
  // pair (i, j) must appear with probability w_i/W * w_j/(W - w_i).
  util::Rng rng(19);
  const std::vector<double> weights{5.0, 3.0, 2.0};
  const double W = 10.0;
  std::map<std::pair<std::size_t, std::size_t>, int> freq;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const auto picks = weighted_sample_without_replacement(weights, 2, rng);
    ASSERT_EQ(picks.size(), 2u);
    ++freq[{picks[0], picks[1]}];
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights.size(); ++j) {
      if (i == j) continue;
      const double expected =
          (weights[i] / W) * (weights[j] / (W - weights[i]));
      const double observed =
          freq[std::make_pair(i, j)] / static_cast<double>(n);
      EXPECT_NEAR(observed, expected, 0.01)
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(WeightedSample, RejectsNegativeWeights) {
  util::Rng rng(11);
  const std::vector<double> weights{1.0, -0.5};
  EXPECT_THROW(weighted_sample_without_replacement(weights, 1, rng),
               PreconditionError);
}

TEST(WeightedSample, KZeroGivesEmpty) {
  util::Rng rng(13);
  const std::vector<double> weights{1.0, 2.0};
  EXPECT_TRUE(weighted_sample_without_replacement(weights, 0, rng).empty());
}

}  // namespace
}  // namespace groupcast::core
