// Tests for the Waxman underlay generator, the Weibull session model, and
// wire-decode robustness against arbitrary bytes (fuzz-style sweep).
#include <gtest/gtest.h>

#include <cmath>

#include "core/wire.h"
#include "net/routing.h"
#include "net/topology.h"
#include "overlay/churn.h"
#include "overlay/host_cache.h"
#include "test_helpers.h"
#include "util/require.h"
#include "util/stats.h"

namespace groupcast {
namespace {

// ------------------------------------------------------------------ Waxman

TEST(Waxman, AlwaysConnectedAcrossSeeds) {
  net::WaxmanConfig config;
  config.routers = 120;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    const auto topo = net::generate_waxman(config, rng);
    EXPECT_TRUE(topo.is_connected()) << "seed " << seed;
    EXPECT_EQ(topo.router_count(), 120u);
  }
}

TEST(Waxman, AllRoutersAreStubAttachable) {
  net::WaxmanConfig config;
  config.routers = 60;
  util::Rng rng(3);
  const auto topo = net::generate_waxman(config, rng);
  EXPECT_EQ(topo.stub_routers().size(), 60u);
}

TEST(Waxman, LinkLatencyMatchesGeometry) {
  // Latencies are plane distances, so they obey the triangle inequality
  // and are bounded by the plane diagonal.
  net::WaxmanConfig config;
  config.routers = 80;
  config.plane_side_ms = 100.0;
  util::Rng rng(5);
  const auto topo = net::generate_waxman(config, rng);
  const double diagonal = 100.0 * std::numbers::sqrt2;
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    EXPECT_GT(topo.link(l).latency_ms, 0.0);
    EXPECT_LE(topo.link(l).latency_ms, diagonal + 1e-9);
  }
}

TEST(Waxman, ShortLinksDominateLongOnes) {
  // The Waxman kernel decays with distance: short links must outnumber
  // long ones.
  net::WaxmanConfig config;
  config.routers = 150;
  util::Rng rng(7);
  const auto topo = net::generate_waxman(config, rng);
  std::size_t short_links = 0, long_links = 0;
  const double threshold = config.plane_side_ms * std::numbers::sqrt2 / 2.0;
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    (topo.link(l).latency_ms < threshold ? short_links : long_links) += 1;
  }
  EXPECT_GT(short_links, 3 * long_links);
}

TEST(Waxman, RoutableAndUsableAsPopulationSubstrate) {
  net::WaxmanConfig config;
  config.routers = 60;
  util::Rng rng(9);
  const auto topo = net::generate_waxman(config, rng);
  const net::IpRouting routing(topo);
  overlay::PopulationConfig pop;
  pop.peer_count = 64;
  pop.gnp.landmarks = 6;
  const overlay::PeerPopulation population(routing, pop, rng);
  EXPECT_GT(population.latency_ms(0, 1), 0.0);
}

TEST(Waxman, RejectsBadParameters) {
  util::Rng rng(1);
  net::WaxmanConfig bad;
  bad.routers = 1;
  EXPECT_THROW(net::generate_waxman(bad, rng), PreconditionError);
  bad = {};
  bad.alpha = 0.0;
  EXPECT_THROW(net::generate_waxman(bad, rng), PreconditionError);
}

// ----------------------------------------------------------------- Weibull

TEST(Weibull, ShapeOneIsExponential) {
  util::Rng rng(11);
  util::Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.weibull(1.0, 3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), 3.0, 0.15);
}

TEST(Weibull, HeavyTailForSmallShape) {
  util::Rng rng(13);
  util::Summary s;
  const double shape = 0.5;
  const double scale = 1.0;
  for (int i = 0; i < 100000; ++i) s.add(rng.weibull(shape, scale));
  // Mean of Weibull(0.5, 1) = Gamma(3) = 2; stddev far above the mean.
  EXPECT_NEAR(s.mean(), 2.0, 0.15);
  EXPECT_GT(s.stddev(), s.mean());
}

TEST(Weibull, RejectsBadParameters) {
  util::Rng rng(1);
  EXPECT_THROW(rng.weibull(0.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.weibull(1.0, 0.0), PreconditionError);
}

TEST(WeibullChurn, MeanSessionPreservedAcrossShapes) {
  // Departure times minus arrival times must average mean_session for both
  // the exponential and heavy-tailed settings.
  for (const double shape : {1.0, 0.6}) {
    testing::SmallWorld world(64, 17);
    overlay::OverlayGraph graph(64);
    overlay::HostCacheServer cache(*world.population,
                                   overlay::HostCacheOptions{}, world.rng);
    overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                          overlay::BootstrapOptions{},
                                          world.rng);
    sim::Simulator simulator;
    overlay::ChurnOptions options;
    options.mean_interarrival = sim::SimTime::seconds(0.01);
    options.mean_session = sim::SimTime::seconds(100.0);
    options.session_shape = shape;
    options.failure_fraction = 0.0;
    overlay::ChurnModel churn(simulator, bootstrap, options, world.rng);
    std::vector<overlay::PeerId> order;
    for (overlay::PeerId p = 0; p < 64; ++p) order.push_back(p);
    churn.start(order);
    simulator.run();
    EXPECT_EQ(churn.stats().graceful_leaves, 64u) << "shape " << shape;
    // All sessions ended; mean session length is bounded sanely (64
    // samples: generous tolerance).
    EXPECT_GT(simulator.now().as_seconds(), 50.0);
  }
}

// --------------------------------------------------------------- wire fuzz

TEST(WireFuzz, ArbitraryBytesNeverCrash) {
  util::Rng rng(19);
  std::size_t decoded = 0, rejected = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.uniform_index(24));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    try {
      const auto body = core::decode_message(bytes);
      // Anything that decodes must re-encode to the same bytes.
      EXPECT_EQ(core::encode_message(body), bytes);
      ++decoded;
    } catch (const core::WireError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  // Random bytes occasionally form valid messages (1-in-256 tag hit with
  // the right length); both paths must be exercised.
  EXPECT_EQ(decoded + rejected, 20000u);
}

TEST(WireFuzz, BitFlippedMessagesDecodeOrThrowCleanly) {
  const auto bytes = core::encode_message(core::DataMsg{1, 2, 3});
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = bytes;
      mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
      try {
        const auto body = core::decode_message(mutated);
        EXPECT_EQ(core::encode_message(body), mutated);
      } catch (const core::WireError&) {
        // acceptable: corrupted tag
      }
    }
  }
}

}  // namespace
}  // namespace groupcast
