// Tests for the binary wire format: round-trips, size accounting, and
// rejection of malformed input.
#include <gtest/gtest.h>

#include "core/wire.h"
#include "test_helpers.h"

namespace groupcast::core {
namespace {

std::vector<MessageBody> all_message_kinds() {
  return {
      AdvertiseMsg{7, 42, 8},
      JoinMsg{7, 1001},
      JoinAckMsg{7, 3},
      RippleQueryMsg{7, 2002, 2, 1},
      RippleHitMsg{7, 3003, 4},
      DataMsg{7, 4004, 0xDEADBEEFCAFEF00DULL},
      LeaveMsg{7, 5005},
      HeartbeatMsg{7},
      HeartbeatAckMsg{7, 2},
      ParentLostMsg{7},
      ReliableDataMsg{7, 4004, 0xDEADBEEFCAFEF00DULL, 3, 99},
      DataNackMsg{7, 3, 64, 0x8000000000000001ULL},
      DataAckMsg{7, 3, 65},
      SeqSyncMsg{7, 3, 12, 66},
      FlowControlMsg{7, true},
      LeaseMsg{7, 4, 6006, 1001},
      LeaseAckMsg{7, 4, 4, 3},
      ReplicateMsg{7, 4, 6006, 1001, {{1, 1001}, {2, 6006}, {4, 6006}}},
      ReplicateAckMsg{7, 4, 4, 3},
      HandoffMsg{7, 5, 7007, 1001},
      ChunkMsg{7, 42, 3, 17, 123456789, 5, 2, 88},
  };
}

TEST(Wire, RoundTripsEveryMessageKind) {
  for (const auto& original : all_message_kinds()) {
    const auto bytes = encode_message(original);
    const auto decoded = decode_message(bytes);
    ASSERT_EQ(decoded.index(), original.index());
    // Re-encoding must be byte-identical (canonical encoding).
    EXPECT_EQ(encode_message(decoded), bytes);
  }
}

TEST(Wire, FieldValuesSurviveRoundTrip) {
  const auto bytes = encode_message(DataMsg{9, 77, 123456789ULL});
  const auto decoded = std::get<DataMsg>(decode_message(bytes));
  EXPECT_EQ(decoded.group, 9u);
  EXPECT_EQ(decoded.origin, 77u);
  EXPECT_EQ(decoded.payload_id, 123456789ULL);

  const auto adv_bytes = encode_message(AdvertiseMsg{1, 2, 3});
  const auto adv = std::get<AdvertiseMsg>(decode_message(adv_bytes));
  EXPECT_EQ(adv.group, 1u);
  EXPECT_EQ(adv.rendezvous, 2u);
  EXPECT_EQ(adv.ttl, 3u);
}

TEST(Wire, EncodedSizeMatchesActualEncoding) {
  for (const auto& body : all_message_kinds()) {
    EXPECT_EQ(encode_message(body).size(), encoded_size(body));
  }
}

TEST(Wire, ExtremeValuesRoundTrip) {
  const auto bytes = encode_message(
      DataMsg{0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFFFFFFFFFULL});
  const auto decoded = std::get<DataMsg>(decode_message(bytes));
  EXPECT_EQ(decoded.group, 0xFFFFFFFFu);
  EXPECT_EQ(decoded.payload_id, 0xFFFFFFFFFFFFFFFFULL);
}

TEST(Wire, ReliableDataPlaneFieldsSurviveRoundTrip) {
  const auto rd = std::get<ReliableDataMsg>(decode_message(
      encode_message(ReliableDataMsg{9, 77, 123456789ULL, 5, 42})));
  EXPECT_EQ(rd.group, 9u);
  EXPECT_EQ(rd.origin, 77u);
  EXPECT_EQ(rd.payload_id, 123456789ULL);
  EXPECT_EQ(rd.epoch, 5u);
  EXPECT_EQ(rd.seq, 42u);

  const auto nack = std::get<DataNackMsg>(decode_message(
      encode_message(DataNackMsg{9, 5, 100, 0x5ULL})));
  EXPECT_EQ(nack.epoch, 5u);
  EXPECT_EQ(nack.base_seq, 100u);
  EXPECT_EQ(nack.missing, 0x5ULL);

  const auto ack = std::get<DataAckMsg>(
      decode_message(encode_message(DataAckMsg{9, 5, 101})));
  EXPECT_EQ(ack.cumulative, 101u);

  const auto sync = std::get<SeqSyncMsg>(
      decode_message(encode_message(SeqSyncMsg{9, 5, 90, 102})));
  EXPECT_EQ(sync.epoch, 5u);
  EXPECT_EQ(sync.base_seq, 90u);
  EXPECT_EQ(sync.next_seq, 102u);

  for (const bool throttled : {false, true}) {
    const auto fc = std::get<FlowControlMsg>(
        decode_message(encode_message(FlowControlMsg{9, throttled})));
    EXPECT_EQ(fc.group, 9u);
    EXPECT_EQ(fc.throttled, throttled);
  }
}

TEST(Wire, ReplicationFieldsSurviveRoundTrip) {
  const auto lease = std::get<LeaseMsg>(
      decode_message(encode_message(LeaseMsg{9, 4, 77, 12})));
  EXPECT_EQ(lease.group, 9u);
  EXPECT_EQ(lease.epoch, 4u);
  EXPECT_EQ(lease.leader, 77u);
  EXPECT_EQ(lease.rendezvous, 12u);

  const auto ack = std::get<LeaseAckMsg>(
      decode_message(encode_message(LeaseAckMsg{9, 4, 6, 5})));
  EXPECT_EQ(ack.epoch, 4u);
  EXPECT_EQ(ack.head_epoch, 6u);
  EXPECT_EQ(ack.log_size, 5u);

  const auto push = std::get<ReplicateMsg>(decode_message(encode_message(
      ReplicateMsg{9, 4, 77, 12, {{1, 12}, {3, 88}, {4, 77}}})));
  EXPECT_EQ(push.leader, 77u);
  ASSERT_EQ(push.records.size(), 3u);
  EXPECT_EQ(push.records[1], (LeaseRecord{3, 88}));

  const auto empty_push = std::get<ReplicateMsg>(
      decode_message(encode_message(ReplicateMsg{9, 1, 12, 12, {}})));
  EXPECT_TRUE(empty_push.records.empty());

  const auto handoff = std::get<HandoffMsg>(
      decode_message(encode_message(HandoffMsg{9, 5, 88, 12})));
  EXPECT_EQ(handoff.epoch, 5u);
  EXPECT_EQ(handoff.candidate, 88u);
  EXPECT_EQ(handoff.rendezvous, 12u);
}

TEST(Wire, ChunkFieldsSurviveRoundTrip) {
  const ChunkMsg original{9, 77, 5, 123, 2'500'000, 6, 3, 456};
  const auto bytes = encode_message(original);
  // Header (tag + 5 u32 + 2 u64) plus the zero-padded body — the padding
  // is what bandwidth pacing charges, so it must be on the wire and in
  // encoded_size.
  EXPECT_EQ(bytes.size(), 41u + original.payload_bytes);
  EXPECT_EQ(encoded_size(original), bytes.size());
  const auto chunk = std::get<ChunkMsg>(decode_message(bytes));
  EXPECT_EQ(chunk.group, 9u);
  EXPECT_EQ(chunk.origin, 77u);
  EXPECT_EQ(chunk.stream, 5u);
  EXPECT_EQ(chunk.chunk_id, 123u);
  EXPECT_EQ(chunk.deadline_us, 2'500'000);
  EXPECT_EQ(chunk.payload_bytes, 6u);
  EXPECT_EQ(chunk.epoch, 3u);
  EXPECT_EQ(chunk.seq, 456u);
  // Hop depth is in-memory provenance, never wire-encoded.
  EXPECT_EQ(chunk.hops, 0u);
}

TEST(Wire, RejectsOversizedChunkBody) {
  // A frame claiming a body beyond kMaxChunkBytes is garbled or hostile;
  // the decoder must reject it before trying to skip the body.  Patch
  // the length field in place (offset 25: tag + group/origin/stream/
  // chunk_id + deadline).
  auto bytes = encode_message(ChunkMsg{9, 77, 5, 123, 1000, 2, 0, 0});
  for (std::size_t i = 0; i < 4; ++i) bytes[25 + i] = 0xFF;
  EXPECT_THROW(decode_message(bytes), WireError);
}

TEST(Wire, RejectsOversizedLeaseLog) {
  // The record-count bound caps what a decoder will allocate; an epoch
  // log can only grow by one record per committed handoff, so any count
  // beyond the bound is a garbled or hostile frame.
  ReplicateMsg msg{9, 1, 12, 12, {}};
  msg.records.resize(1025, LeaseRecord{1, 12});
  auto bytes = encode_message(msg);
  EXPECT_THROW(decode_message(bytes), WireError);
}

TEST(Wire, RejectsNonCanonicalFlowControlFlag) {
  // The throttled byte is a canonical bool: 0 or 1 only.  A truthy 0xC8
  // would decode and re-encode differently, breaking byte-stable replay.
  auto bytes = encode_message(FlowControlMsg{9, true});
  bytes.back() = 0xC8;
  EXPECT_THROW(decode_message(bytes), WireError);
}

TEST(Wire, RejectsTruncatedBuffers) {
  for (const auto& body : all_message_kinds()) {
    const auto bytes = encode_message(body);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::span<const std::uint8_t> truncated(bytes.data(), cut);
      EXPECT_THROW(decode_message(truncated), WireError)
          << "cut at " << cut << " of " << bytes.size();
    }
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto bytes = encode_message(JoinAckMsg{1});
  bytes.push_back(0x00);
  EXPECT_THROW(decode_message(bytes), WireError);
}

TEST(Wire, RejectsUnknownTag) {
  const std::vector<std::uint8_t> bogus{0xEE, 0, 0, 0, 0};
  EXPECT_THROW(decode_message(bogus), WireError);
}

TEST(Wire, LittleEndianLayoutIsStable) {
  // Protocol stability check: the byte layout must never silently change.
  const auto bytes = encode_message(JoinMsg{0x01020304u, 0x0A0B0C0Du});
  const std::vector<std::uint8_t> expected{
      0x02,                     // Tag::kJoin
      0x04, 0x03, 0x02, 0x01,   // group, little-endian
      0x0D, 0x0C, 0x0B, 0x0A};  // child, little-endian
  EXPECT_EQ(bytes, expected);
}

TEST(Wire, TransportAccountsBytes) {
  testing::SmallWorld world(8, 3);
  sim::Simulator simulator;
  util::Rng rng(1);
  Transport transport(simulator, *world.population, TransportOptions{}, rng);
  transport.send(0, 1, JoinAckMsg{1});        // 9 bytes
  transport.send(0, 1, DataMsg{1, 2, 3});     // 17 bytes
  EXPECT_EQ(transport.bytes_sent(), 26u);
  simulator.run();
}

}  // namespace
}  // namespace groupcast::core
