// trace_report — summarizes JSONL protocol traces written with
// --trace_out (see docs/OBSERVABILITY.md).
//
//   trace_report run.jsonl               # per-phase breakdown, hotspots,
//                                        # counter table
//   trace_report base.jsonl new.jsonl    # the same, plus a counter diff
//                                        # (new - base)
//
// --top=K controls how many hotspot nodes are listed (default 5).
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "trace/event.h"
#include "trace/sink.h"
#include "trace/counters.h"
#include "util/flags.h"

namespace {

using namespace groupcast;
using trace::CounterId;
using trace::EventKind;
using trace::TraceEvent;

constexpr std::size_t kKinds = static_cast<std::size_t>(EventKind::kCount_);
constexpr std::size_t kPhases = static_cast<std::size_t>(trace::Phase::kCount_);

struct PhaseStats {
  std::array<std::uint64_t, kKinds> by_kind{};
  std::uint64_t events = 0;
  std::int64_t t_min_us = 0;
  std::int64_t t_max_us = 0;
};

struct TraceSummary {
  std::string path;
  std::vector<TraceEvent> events;
  std::size_t malformed = 0;
  // Phase buckets in file order; slot kPhases collects events seen before
  // the first phase_begin marker.
  std::array<PhaseStats, kPhases + 1> phases{};
  std::map<trace::NodeId, std::uint64_t> events_per_node;
  trace::CounterSnapshot counters;  // rebuilt from counter_snapshot events
  bool has_counters = false;
};

bool load(const std::string& path, TraceSummary& out) {
  out.path = path;
  auto events = trace::read_jsonl_file(path, &out.malformed);
  if (!events) {
    std::fprintf(stderr, "trace_report: cannot open '%s'\n", path.c_str());
    return false;
  }
  out.events = std::move(*events);

  std::size_t phase = kPhases;  // pre-phase bucket until a marker appears
  for (const auto& e : out.events) {
    if (e.kind == EventKind::kPhaseBegin &&
        e.value < static_cast<std::uint64_t>(kPhases)) {
      phase = static_cast<std::size_t>(e.value);
    }
    auto& slot = out.phases[phase];
    ++slot.by_kind[static_cast<std::size_t>(e.kind)];
    if (slot.events == 0) {
      slot.t_min_us = slot.t_max_us = e.t_us;
    } else {
      slot.t_min_us = std::min(slot.t_min_us, e.t_us);
      slot.t_max_us = std::max(slot.t_max_us, e.t_us);
    }
    ++slot.events;

    if (e.kind == EventKind::kCounterSnapshot) {
      // Reconstruct the snapshot: `peer` carries the CounterId, rows with
      // node == kNoNode are the totals.
      const auto id = static_cast<std::size_t>(e.peer);
      if (id >= trace::kCounterIds) continue;
      out.has_counters = true;
      if (e.node == trace::kNoNode) {
        out.counters.totals[id] += e.value;
      } else {
        const auto i = static_cast<std::size_t>(e.node);
        if (i >= out.counters.per_node.size()) {
          out.counters.per_node.resize(i + 1);
        }
        out.counters.per_node[i][id] += e.value;
      }
    } else if (e.node != trace::kNoNode) {
      ++out.events_per_node[e.node];
    }
  }
  return true;
}

const char* phase_label(std::size_t phase) {
  if (phase >= kPhases) return "(pre-phase)";
  return trace::to_string(static_cast<trace::Phase>(phase));
}

void print_phase_breakdown(const TraceSummary& s) {
  std::printf("== per-phase breakdown\n");
  std::printf("%-15s %10s %14s  %s\n", "phase", "events", "sim span",
              "top kinds");
  // Print the pre-phase bucket first, then phases in protocol order.
  std::vector<std::size_t> order{kPhases};
  for (std::size_t p = 0; p < kPhases; ++p) order.push_back(p);
  for (const std::size_t p : order) {
    const auto& slot = s.phases[p];
    if (slot.events == 0) continue;
    // The three most frequent event kinds of the phase.
    std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
    for (std::size_t k = 0; k < kKinds; ++k) {
      if (slot.by_kind[k] > 0) ranked.emplace_back(slot.by_kind[k], k);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    std::string kinds;
    for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
      if (!kinds.empty()) kinds += ", ";
      kinds += trace::to_string(static_cast<EventKind>(ranked[i].second));
      kinds += '=';
      kinds += std::to_string(ranked[i].first);
    }
    char span[64];
    std::snprintf(span, sizeof(span), "%.1f ms",
                  static_cast<double>(slot.t_max_us - slot.t_min_us) /
                      1000.0);
    std::printf("%-15s %10llu %14s  %s\n", phase_label(p),
                static_cast<unsigned long long>(slot.events), span,
                kinds.c_str());
  }
}

void print_hotspots(const TraceSummary& s, std::size_t top) {
  std::printf("\n== hotspot nodes (by event count)\n");
  std::vector<std::pair<std::uint64_t, trace::NodeId>> ranked;
  ranked.reserve(s.events_per_node.size());
  for (const auto& [node, n] : s.events_per_node) ranked.emplace_back(n, node);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (ranked.empty()) {
    std::printf("(no node-attributed events)\n");
    return;
  }
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    std::printf("node %6u  %10llu events\n", ranked[i].second,
                static_cast<unsigned long long>(ranked[i].first));
  }
  if (s.has_counters) {
    std::printf("\n== hotspot nodes (by messages sent)\n");
    for (const auto& [node, v] :
         s.counters.top_nodes(CounterId::kMessagesSent, top)) {
      std::printf("node %6u  %10llu sent\n", node,
                  static_cast<unsigned long long>(v));
    }
  }
}

void print_counters(const TraceSummary& s) {
  if (!s.has_counters) {
    std::printf("\n(no counter snapshot in trace — run with counters "
                "enabled)\n");
    return;
  }
  std::printf("\n== counters (totals)\n");
  for (std::size_t id = 0; id < trace::kCounterIds; ++id) {
    const auto v = s.counters.totals[id];
    if (v == 0) continue;
    std::printf("%-22s %12llu\n",
                trace::to_string(static_cast<CounterId>(id)),
                static_cast<unsigned long long>(v));
  }
}

void print_diff(const TraceSummary& base, const TraceSummary& next) {
  std::printf("\n== counter diff (%s - %s)\n", next.path.c_str(),
              base.path.c_str());
  if (!base.has_counters || !next.has_counters) {
    std::printf("(both traces need counter snapshots to diff)\n");
    return;
  }
  const auto delta = next.counters.totals_delta(base.counters);
  bool any = false;
  for (std::size_t id = 0; id < trace::kCounterIds; ++id) {
    if (delta[id] == 0 && base.counters.totals[id] == 0) continue;
    any = true;
    std::printf("%-22s %12llu -> %12llu  (%+lld)\n",
                trace::to_string(static_cast<CounterId>(id)),
                static_cast<unsigned long long>(base.counters.totals[id]),
                static_cast<unsigned long long>(next.counters.totals[id]),
                static_cast<long long>(delta[id]));
  }
  if (!any) std::printf("(no differences)\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.declare("top", "hotspot nodes to list", "5");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.help(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested() || flags.positional().empty() ||
      flags.positional().size() > 2) {
    std::printf("usage: %s [--top=K] <trace.jsonl> [other-trace.jsonl]\n%s",
                argv[0], flags.help(argv[0]).c_str());
    return flags.help_requested() ? 0 : 2;
  }
  const auto top = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("top")));

  TraceSummary primary;
  if (!load(flags.positional()[0], primary)) return 1;

  std::printf("trace: %s (%zu events", primary.path.c_str(),
              primary.events.size());
  if (primary.malformed > 0) {
    std::printf(", %zu malformed lines skipped", primary.malformed);
  }
  std::printf(")\n\n");
  print_phase_breakdown(primary);
  print_hotspots(primary, top);
  print_counters(primary);

  if (flags.positional().size() == 2) {
    TraceSummary other;
    if (!load(flags.positional()[1], other)) return 1;
    print_diff(primary, other);
  }
  return 0;
}
