// trace_report — summarizes JSONL protocol traces written with
// --trace_out (see docs/OBSERVABILITY.md).
//
//   trace_report run.jsonl               # per-phase breakdown, hotspots,
//                                        # counter table
//   trace_report base.jsonl new.jsonl    # the same, plus a counter diff
//                                        # (new - base)
//   trace_report --histograms run.jsonl  # sim-time distributions rebuilt
//                                        # from histogram_bin events
//   trace_report --timeline run.jsonl    # flight-recorder time series
//   trace_report --message=<origin:id> run.jsonl
//                                        # dissemination tree, per-hop
//                                        # latency and critical path of
//                                        # one payload ("auto" = first
//                                        # published payload in the trace)
//
// --top=K controls how many hotspot nodes are listed (default 5).
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "trace/event.h"
#include "trace/flight_recorder.h"
#include "trace/histogram.h"
#include "trace/sink.h"
#include "trace/counters.h"
#include "util/flags.h"

namespace {

using namespace groupcast;
using trace::CounterId;
using trace::EventKind;
using trace::TraceEvent;

constexpr std::size_t kKinds = static_cast<std::size_t>(EventKind::kCount_);
constexpr std::size_t kPhases = static_cast<std::size_t>(trace::Phase::kCount_);

struct PhaseStats {
  std::array<std::uint64_t, kKinds> by_kind{};
  std::uint64_t events = 0;
  std::int64_t t_min_us = 0;
  std::int64_t t_max_us = 0;
};

struct TraceSummary {
  std::string path;
  std::vector<TraceEvent> events;
  std::size_t malformed = 0;
  // Phase buckets in file order; slot kPhases collects events seen before
  // the first phase_begin marker.
  std::array<PhaseStats, kPhases + 1> phases{};
  std::map<trace::NodeId, std::uint64_t> events_per_node;
  trace::CounterSnapshot counters;  // rebuilt from counter_snapshot events
  bool has_counters = false;
};

bool load(const std::string& path, TraceSummary& out) {
  out.path = path;
  auto events = trace::read_jsonl_file(path, &out.malformed);
  if (!events) {
    std::fprintf(stderr, "trace_report: cannot open '%s'\n", path.c_str());
    return false;
  }
  out.events = std::move(*events);

  std::size_t phase = kPhases;  // pre-phase bucket until a marker appears
  for (const auto& e : out.events) {
    if (e.kind == EventKind::kPhaseBegin &&
        e.value < static_cast<std::uint64_t>(kPhases)) {
      phase = static_cast<std::size_t>(e.value);
    }
    auto& slot = out.phases[phase];
    ++slot.by_kind[static_cast<std::size_t>(e.kind)];
    if (slot.events == 0) {
      slot.t_min_us = slot.t_max_us = e.t_us;
    } else {
      slot.t_min_us = std::min(slot.t_min_us, e.t_us);
      slot.t_max_us = std::max(slot.t_max_us, e.t_us);
    }
    ++slot.events;

    if (e.kind == EventKind::kCounterSnapshot) {
      // Reconstruct the snapshot: `peer` carries the CounterId, rows with
      // node == kNoNode are the totals.
      const auto id = static_cast<std::size_t>(e.peer);
      if (id >= trace::kCounterIds) continue;
      out.has_counters = true;
      if (e.node == trace::kNoNode) {
        out.counters.totals[id] += e.value;
      } else {
        const auto i = static_cast<std::size_t>(e.node);
        if (i >= out.counters.per_node.size()) {
          out.counters.per_node.resize(i + 1);
        }
        out.counters.per_node[i][id] += e.value;
      }
    } else if (e.node != trace::kNoNode) {
      ++out.events_per_node[e.node];
    }
  }
  return true;
}

const char* phase_label(std::size_t phase) {
  if (phase >= kPhases) return "(pre-phase)";
  return trace::to_string(static_cast<trace::Phase>(phase));
}

void print_phase_breakdown(const TraceSummary& s) {
  std::printf("== per-phase breakdown\n");
  std::printf("%-15s %10s %14s  %s\n", "phase", "events", "sim span",
              "top kinds");
  // Print the pre-phase bucket first, then phases in protocol order.
  std::vector<std::size_t> order{kPhases};
  for (std::size_t p = 0; p < kPhases; ++p) order.push_back(p);
  for (const std::size_t p : order) {
    const auto& slot = s.phases[p];
    if (slot.events == 0) continue;
    // The three most frequent event kinds of the phase.
    std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
    for (std::size_t k = 0; k < kKinds; ++k) {
      if (slot.by_kind[k] > 0) ranked.emplace_back(slot.by_kind[k], k);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    std::string kinds;
    for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
      if (!kinds.empty()) kinds += ", ";
      kinds += trace::to_string(static_cast<EventKind>(ranked[i].second));
      kinds += '=';
      kinds += std::to_string(ranked[i].first);
    }
    char span[64];
    std::snprintf(span, sizeof(span), "%.1f ms",
                  static_cast<double>(slot.t_max_us - slot.t_min_us) /
                      1000.0);
    std::printf("%-15s %10llu %14s  %s\n", phase_label(p),
                static_cast<unsigned long long>(slot.events), span,
                kinds.c_str());
  }
}

void print_hotspots(const TraceSummary& s, std::size_t top) {
  std::printf("\n== hotspot nodes (by event count)\n");
  std::vector<std::pair<std::uint64_t, trace::NodeId>> ranked;
  ranked.reserve(s.events_per_node.size());
  for (const auto& [node, n] : s.events_per_node) ranked.emplace_back(n, node);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (ranked.empty()) {
    std::printf("(no node-attributed events)\n");
    return;
  }
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    std::printf("node %6u  %10llu events\n", ranked[i].second,
                static_cast<unsigned long long>(ranked[i].first));
  }
  if (s.has_counters) {
    std::printf("\n== hotspot nodes (by messages sent)\n");
    for (const auto& [node, v] :
         s.counters.top_nodes(CounterId::kMessagesSent, top)) {
      std::printf("node %6u  %10llu sent\n", node,
                  static_cast<unsigned long long>(v));
    }
  }
}

void print_counters(const TraceSummary& s) {
  if (!s.has_counters) {
    std::printf("\n(no counter snapshot in trace — run with counters "
                "enabled)\n");
    return;
  }
  std::printf("\n== counters (totals)\n");
  for (std::size_t id = 0; id < trace::kCounterIds; ++id) {
    const auto v = s.counters.totals[id];
    if (v == 0) continue;
    std::printf("%-22s %12llu\n",
                trace::to_string(static_cast<CounterId>(id)),
                static_cast<unsigned long long>(v));
  }
}

// ------------------------------------------------------------ histograms

void print_histograms(const TraceSummary& s) {
  // Rebuild each distribution from its kHistogramBin rows: `node` carries
  // the HistogramId, `peer` the bin index (or a summary slot past the bin
  // range: count, sum, min, max — see trace::emit_histogram_snapshot).
  struct View {
    trace::HistogramData data;
    bool present = false;
  };
  std::array<View, trace::kHistogramIds> views{};
  for (const auto& e : s.events) {
    if (e.kind != EventKind::kHistogramBin) continue;
    const auto id = static_cast<std::size_t>(e.node);
    if (id >= trace::kHistogramIds) continue;
    auto& v = views[id];
    const auto slot = static_cast<std::size_t>(e.peer);
    if (slot < trace::kHistogramBins) {
      v.data.bins[slot] += e.value;
    } else {
      switch (slot - trace::kHistogramBins) {
        case 0: v.data.count += e.value; break;
        case 1: v.data.sum += e.value; break;
        case 2: v.data.min = v.present ? std::min(v.data.min, e.value)
                                       : e.value; break;
        case 3: v.data.max = std::max(v.data.max, e.value); break;
        default: break;
      }
    }
    v.present = true;
  }

  std::printf("== sim-time histograms\n");
  bool any = false;
  for (std::size_t id = 0; id < trace::kHistogramIds; ++id) {
    const auto& v = views[id];
    if (!v.present || v.data.count == 0) continue;
    any = true;
    const auto& h = v.data;
    std::printf("\n%s: %llu samples, mean %.1f, p50 %llu, p99 %llu, "
                "min %llu, max %llu\n",
                trace::to_string(static_cast<trace::HistogramId>(id)),
                static_cast<unsigned long long>(h.count), h.mean(),
                static_cast<unsigned long long>(h.percentile(0.50)),
                static_cast<unsigned long long>(h.percentile(0.99)),
                static_cast<unsigned long long>(h.min),
                static_cast<unsigned long long>(h.max));
    // One row per occupied bin, with a proportional bar.
    std::uint64_t peak = 0;
    for (const auto b : h.bins) peak = std::max(peak, b);
    for (std::size_t bin = 0; bin < trace::kHistogramBins; ++bin) {
      if (h.bins[bin] == 0) continue;
      const auto width = static_cast<int>(
          (40 * h.bins[bin] + peak - 1) / std::max<std::uint64_t>(1, peak));
      std::printf("  >=%12llu %10llu %.*s\n",
                  static_cast<unsigned long long>(
                      trace::histogram_bin_floor(bin)),
                  static_cast<unsigned long long>(h.bins[bin]), width,
                  "########################################");
    }
  }
  if (!any) {
    std::printf("(no histogram snapshot in trace — run with histograms "
                "enabled)\n");
  }
}

// -------------------------------------------------------------- timeline

void print_timeline(const TraceSummary& s) {
  // kTimelineFrame rows: one per (frame, non-zero series); `peer` indexes
  // the series — counters first, then histogram sample counts.
  std::map<std::int64_t, std::array<std::uint64_t, trace::kTimelineSeries>>
      frames;
  std::array<bool, trace::kTimelineSeries> active{};
  for (const auto& e : s.events) {
    if (e.kind != EventKind::kTimelineFrame) continue;
    const auto series = static_cast<std::size_t>(e.peer);
    if (series >= trace::kTimelineSeries) continue;
    frames[e.t_us][series] = e.value;
    active[series] = true;
  }
  std::printf("== flight-recorder timeline\n");
  if (frames.empty()) {
    std::printf("(no timeline frames in trace — run with the flight "
                "recorder enabled)\n");
    return;
  }
  std::vector<std::size_t> columns;
  for (std::size_t i = 0; i < trace::kTimelineSeries; ++i) {
    if (active[i]) columns.push_back(i);
  }
  std::printf("%10s", "sim ms");
  for (const auto c : columns) {
    const char* label =
        c < trace::kCounterIds
            ? trace::to_string(static_cast<CounterId>(c))
            : trace::to_string(
                  static_cast<trace::HistogramId>(c - trace::kCounterIds));
    std::printf(" %18s", label);
  }
  std::printf("\n");
  for (const auto& [t_us, row] : frames) {
    std::printf("%10.1f", static_cast<double>(t_us) / 1000.0);
    for (const auto c : columns) {
      std::printf(" %18llu", static_cast<unsigned long long>(row[c]));
    }
    std::printf("\n");
  }
  std::printf("(%zu frames; values are cumulative at each frame time)\n",
              frames.size());
}

// --------------------------------------------------------------- message

struct Delivery {
  trace::NodeId via = trace::kNoNode;
  std::int64_t t_us = 0;
  std::uint32_t hops = 0;
  std::int64_t sent_t_us = -1;   // matching payload_sent, -1 if unseen
  std::uint64_t retransmits = 0; // retransmit rows for this edge
};

/// Reconstructs and prints the dissemination tree of one payload from its
/// provenance events.  Returns false when the payload never appears.
bool print_message(const TraceSummary& s, const std::string& spec) {
  // Resolve the target (origin, payload_id).
  trace::NodeId origin = trace::kNoNode;
  std::uint64_t payload_id = 0;
  if (spec == "auto") {
    for (const auto& e : s.events) {
      if (e.kind != EventKind::kPayloadPublished) continue;
      const auto p = trace::unpack_provenance(e.value);
      origin = p.origin;
      payload_id = p.payload_id;
      break;
    }
    if (origin == trace::kNoNode) {
      std::printf("== message auto\n(no payload_published events in "
                  "trace — run a recovery scenario with --trace_out)\n");
      return false;
    }
  } else {
    const auto colon = spec.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr,
                   "trace_report: --message wants <origin:id> or auto\n");
      return false;
    }
    origin = static_cast<trace::NodeId>(
        std::strtoull(spec.c_str(), nullptr, 10));
    payload_id = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  }

  // Collect this payload's provenance rows.  payload_id is truncated to
  // 32 bits by the packing, so compare through the same mask.
  const auto matches = [&](const trace::Provenance& p) {
    return p.origin == origin &&
           p.payload_id == (payload_id & 0xFFFFFFFFu);
  };
  std::int64_t published_t = -1;
  std::map<trace::NodeId, Delivery> deliveries;  // receiver -> first copy
  std::map<std::pair<trace::NodeId, trace::NodeId>, std::int64_t> sends;
  std::uint64_t sent_rows = 0, retransmit_rows = 0;
  for (const auto& e : s.events) {
    switch (e.kind) {
      case EventKind::kPayloadPublished: {
        if (matches(trace::unpack_provenance(e.value)) && published_t < 0) {
          published_t = e.t_us;
        }
        break;
      }
      case EventKind::kPayloadSent: {
        if (!matches(trace::unpack_provenance(e.value))) break;
        ++sent_rows;
        const auto key = std::make_pair(e.node, e.peer);
        if (sends.find(key) == sends.end()) sends[key] = e.t_us;
        break;
      }
      case EventKind::kPayloadRetransmit: {
        if (matches(trace::unpack_provenance(e.value))) ++retransmit_rows;
        break;
      }
      case EventKind::kPayloadDelivered: {
        const auto p = trace::unpack_provenance(e.value);
        if (!matches(p)) break;
        if (deliveries.find(e.node) == deliveries.end()) {
          deliveries[e.node] = Delivery{e.peer, e.t_us, p.hops, -1, 0};
        }
        break;
      }
      default:
        break;
    }
  }
  // Retransmit rows can precede the delivery they repair in file order,
  // so attribute them to tree edges in a second pass over the full map.
  for (const auto& e : s.events) {
    if (e.kind != EventKind::kPayloadRetransmit) continue;
    if (!matches(trace::unpack_provenance(e.value))) continue;
    auto it = deliveries.find(e.peer);
    if (it != deliveries.end() && it->second.via == e.node) {
      ++it->second.retransmits;
    }
  }
  for (auto& [receiver, d] : deliveries) {
    const auto it = sends.find(std::make_pair(d.via, receiver));
    if (it != sends.end()) d.sent_t_us = it->second;
  }

  std::printf("== message %u:%llu dissemination\n", origin,
              static_cast<unsigned long long>(payload_id));
  if (published_t < 0 && deliveries.empty()) {
    std::printf("(payload not found in trace)\n");
    return false;
  }
  if (published_t >= 0) {
    std::printf("published by node %u at %.3f ms\n", origin,
                static_cast<double>(published_t) / 1000.0);
  }
  std::uint32_t max_depth = 0;
  std::int64_t last_arrival = published_t;
  trace::NodeId last_node = origin;
  for (const auto& [receiver, d] : deliveries) {
    max_depth = std::max(max_depth, d.hops);
    if (d.t_us > last_arrival) {
      last_arrival = d.t_us;
      last_node = receiver;
    }
  }
  std::printf("delivered to %zu nodes over %llu sends "
              "(%llu retransmit rows), max depth %u\n",
              deliveries.size(),
              static_cast<unsigned long long>(sent_rows),
              static_cast<unsigned long long>(retransmit_rows), max_depth);

  // Per-depth arrival profile: how many copies arrived at each hop count
  // and the mean edge latency at that depth.
  std::map<std::uint32_t, std::pair<std::uint64_t, std::int64_t>> by_depth;
  for (const auto& [receiver, d] : deliveries) {
    auto& [n, latency] = by_depth[d.hops];
    ++n;
    if (d.sent_t_us >= 0) latency += d.t_us - d.sent_t_us;
  }
  std::printf("\nper-hop breakdown:\n");
  std::printf("%6s %8s %16s\n", "depth", "arrived", "mean edge delay");
  for (const auto& [depth, agg] : by_depth) {
    std::printf("%6u %8llu %13.3f ms\n", depth,
                static_cast<unsigned long long>(agg.first),
                static_cast<double>(agg.second) /
                    (1000.0 * static_cast<double>(agg.first)));
  }

  // Critical path: walk parents back from the last arrival.  Stalled
  // edges (a retransmit before the copy landed) are flagged.
  std::printf("\ncritical path (to node %u, arrived %.3f ms):\n", last_node,
              static_cast<double>(last_arrival) / 1000.0);
  std::vector<trace::NodeId> path;
  for (trace::NodeId walk = last_node;;) {
    path.push_back(walk);
    if (walk == origin || path.size() > deliveries.size() + 1) break;
    const auto it = deliveries.find(walk);
    if (it == deliveries.end()) break;
    walk = it->second.via;
  }
  std::reverse(path.begin(), path.end());
  for (const auto node : path) {
    if (node == origin) {
      std::printf("  node %6u  (origin", node);
      if (published_t >= 0) {
        std::printf(", published %.3f ms",
                    static_cast<double>(published_t) / 1000.0);
      }
      std::printf(")\n");
      continue;
    }
    const auto it = deliveries.find(node);
    if (it == deliveries.end()) break;
    const auto& d = it->second;
    std::printf("  node %6u  hop %2u  arrived %9.3f ms", node, d.hops,
                static_cast<double>(d.t_us) / 1000.0);
    if (d.sent_t_us >= 0) {
      std::printf("  (+%.3f ms on edge %u -> %u)",
                  static_cast<double>(d.t_us - d.sent_t_us) / 1000.0,
                  d.via, node);
    }
    if (d.retransmits > 0) {
      std::printf("  [stall: %llu retransmit%s]",
                  static_cast<unsigned long long>(d.retransmits),
                  d.retransmits == 1 ? "" : "s");
    }
    std::printf("\n");
  }
  return true;
}

void print_diff(const TraceSummary& base, const TraceSummary& next) {
  std::printf("\n== counter diff (%s - %s)\n", next.path.c_str(),
              base.path.c_str());
  if (!base.has_counters || !next.has_counters) {
    std::printf("(both traces need counter snapshots to diff)\n");
    return;
  }
  const auto delta = next.counters.totals_delta(base.counters);
  bool any = false;
  for (std::size_t id = 0; id < trace::kCounterIds; ++id) {
    if (delta[id] == 0 && base.counters.totals[id] == 0) continue;
    any = true;
    std::printf("%-22s %12llu -> %12llu  (%+lld)\n",
                trace::to_string(static_cast<CounterId>(id)),
                static_cast<unsigned long long>(base.counters.totals[id]),
                static_cast<unsigned long long>(next.counters.totals[id]),
                static_cast<long long>(delta[id]));
  }
  if (!any) std::printf("(no differences)\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.declare("top", "hotspot nodes to list", "5");
  flags.declare("histograms",
                "print the sim-time histograms instead of the summary",
                "false");
  flags.declare("timeline",
                "print the flight-recorder time series instead of the "
                "summary",
                "false");
  flags.declare("message",
                "reconstruct one payload's dissemination tree: "
                "<origin:id>, or 'auto' for the first published payload",
                "");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.help(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested() || flags.positional().empty() ||
      flags.positional().size() > 2) {
    std::printf("usage: %s [--top=K] [--histograms] [--timeline] "
                "[--message=<origin:id>|auto] <trace.jsonl> "
                "[other-trace.jsonl]\n%s",
                argv[0], flags.help(argv[0]).c_str());
    return flags.help_requested() ? 0 : 2;
  }
  const auto top = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("top")));

  TraceSummary primary;
  if (!load(flags.positional()[0], primary)) return 1;

  std::printf("trace: %s (%zu events", primary.path.c_str(),
              primary.events.size());
  if (primary.malformed > 0) {
    std::printf(", %zu malformed lines skipped", primary.malformed);
  }
  std::printf(")\n\n");

  const std::string message = flags.get_string("message");
  if (flags.get_bool("histograms")) {
    print_histograms(primary);
    return 0;
  }
  if (flags.get_bool("timeline")) {
    print_timeline(primary);
    return 0;
  }
  if (!message.empty()) {
    return print_message(primary, message) ? 0 : 1;
  }

  print_phase_breakdown(primary);
  print_hotspots(primary, top);
  print_counters(primary);

  if (flags.positional().size() == 2) {
    TraceSummary other;
    if (!load(flags.positional()[1], other)) return 1;
    print_diff(primary, other);
  }
  return 0;
}
